// Binary RPC front end for QueryService — an epoll-based TCP server
// speaking the src/net/wire.hpp frame protocol.
//
// Architecture: one listen socket plus `num_loops` worker event loops,
// each an epoll instance driven by its own thread. Loop 0 owns the
// acceptor; accepted connections are handed round-robin to the loops and
// stay pinned there (a connection's fd is only ever read, written, or
// closed by its loop thread). Each connection multiplexes many in-flight
// queries: every kQuery frame is submitted through
// QueryService::submit_async, the completion callback encodes the
// response and appends it to the connection's outbox, and responses go
// back tagged with the client's request_id — out of order, as queries
// finish. Result payloads are written with scatter-gather sendmsg
// straight from the engine's fold buffers (EncodedResponse), so a large
// result is never copied into a serialization buffer.
//
// Co-located clients can negotiate the shared-memory fast path
// (net/shm.hpp): after kShmOffer/kShmAccept/kShmAttach, worker callbacks
// write result payloads from the fold buffers straight into the
// connection's ring and queue only a small kShmResult descriptor frame; a
// full ring (client slow to release) or an oversize payload falls back to
// the TCP frame per response. The segment is unlinked the moment the
// client attaches and unmapped on disconnect, so a crashed client leaks
// nothing.
//
// Connection lifecycle: a fresh connection has no session; the client
// sends kOpenSession (at most once) and queries after that. Closing the
// socket — or any protocol error (bad magic, CRC mismatch, version
// mismatch, unknown frame type) — tears the connection down: the server
// closes its session, and responses for its in-flight queries are
// dropped on arrival (counted in ServerStats::responses_dropped).
// Malformed *payloads* behind a valid header are answered with an error
// frame and the connection stays usable, since the stream is still in
// sync.
//
// Shutdown: shutdown(grace) stops accepting, refuses new queries
// (FailedPrecondition), waits up to `grace` seconds for in-flight
// queries to resolve, then cancels whatever is still queued and waits
// for the (bounded) remainder to drain before closing sessions and
// sockets. Safe against the QueryService-destructor path: by the time
// shutdown() returns, no completion callback can reference the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.hpp"
#include "service/query_service.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace mloc::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the choice via port()
  int num_loops = 2;       ///< worker event loops (loop 0 also accepts)
  double drain_grace_s = 5.0;  ///< shutdown(): wait for in-flight queries
  /// Per-frame payload cap enforced on receive; defaults well below the
  /// protocol-level kMaxPayloadBytes so a hostile header cannot make the
  /// server buffer gigabytes.
  std::uint32_t max_payload_bytes = 64u << 20;
  /// Honor kShmOffer handshakes: co-located clients get a per-connection
  /// shared-memory ring and query-result payloads skip the socket. Off =
  /// offers are refused (Unsupported) and clients fall back to TCP.
  bool enable_shm = true;
  /// Clamp on the ring size a client may request (per connection, so 512
  /// greedy clients cannot pin 512 x unbounded tmpfs pages).
  std::uint64_t max_shm_ring_bytes = 64ull << 20;
};

/// Monotonic counters, snapshot under one lock via Server::stats().
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t protocol_errors = 0;    ///< connection torn down mid-stream
  std::uint64_t payload_errors = 0;     ///< bad payload, connection kept
  std::uint64_t rejected_draining = 0;  ///< queries refused during shutdown
  std::uint64_t responses_dropped = 0;  ///< owning connection already gone
  std::uint64_t shm_segments = 0;       ///< rings created for kShmOffer
  std::uint64_t shm_attached = 0;       ///< rings confirmed mapped by clients
  std::uint64_t responses_shm = 0;      ///< query results shipped via a ring
  std::uint64_t responses_tcp = 0;      ///< query results shipped as frames
  std::uint64_t shm_fallbacks = 0;      ///< ring full/oversize -> TCP frame
};

class Server {
 public:
  /// `svc` must outlive the server (the server holds a reference and
  /// submits queries to it until shutdown() completes).
  explicit Server(service::QueryService& svc, ServerConfig cfg = {});
  ~Server();  ///< shutdown(cfg.drain_grace_s) if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the event-loop threads.
  Status start();

  /// The bound port (after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful stop; idempotent. `grace_s < 0` uses cfg.drain_grace_s.
  void shutdown(double grace_s = -1.0)
      MLOC_EXCLUDES(shutdown_mutex_, drain_mutex_, registry_mutex_);

  [[nodiscard]] ServerStats stats() const MLOC_EXCLUDES(stats_mutex_);

 private:
  struct Connection;
  struct Loop;

  void loop_main(Loop& loop);
  static void wake(Loop& loop);
  void accept_ready(Loop& loop);
  /// Loop-thread only: add `conn` to the loop's epoll set and fd map.
  void register_connection(Loop& loop, std::shared_ptr<Connection> conn);
  void handle_readable(Loop& loop, const std::shared_ptr<Connection>& conn);
  /// Parse every complete frame in the connection's read buffer. Returns
  /// false when the stream is unrecoverable (connection must close).
  bool parse_frames(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const FrameHeader& h,
                    std::span<const std::uint8_t> payload);
  void handle_query(const std::shared_ptr<Connection>& conn,
                    std::uint64_t request_id,
                    std::span<const std::uint8_t> payload);
  /// Append a frame to the outbox and flush what the socket accepts.
  void send_frame(const std::shared_ptr<Connection>& conn, Bytes frame);
  void send_response(const std::shared_ptr<Connection>& conn,
                     EncodedResponse er);
  /// Drain the outbox with scatter-gather writes; arms/disarms EPOLLOUT.
  /// Loop-thread only.
  void flush_writes(const std::shared_ptr<Connection>& conn);
  /// Loop-thread only: closes the fd, the session, and drops the outbox.
  void close_connection(Loop& loop, const std::shared_ptr<Connection>& conn,
                        bool protocol_error);
  /// Wake `loop` so it re-flushes `conn` (called from worker callbacks).
  void notify_writable(const std::shared_ptr<Connection>& conn);
  void finish_inflight() MLOC_EXCLUDES(drain_mutex_);

  service::QueryService& svc_;
  ServerConfig cfg_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> next_loop_{0};

  std::vector<std::unique_ptr<Loop>> loops_;

  /// Queries submitted and not yet resolved through their callback.
  /// (Atomic, paired with drain_cv_: finish_inflight takes drain_mutex_
  /// only to publish the final notify.)
  std::atomic<std::uint64_t> inflight_{0};
  /// Serializes shutdown() callers; always taken before the drain and
  /// registry locks it nests (declared so an inversion cannot compile).
  sync::Mutex shutdown_mutex_ MLOC_ACQUIRED_BEFORE(drain_mutex_,
                                                   registry_mutex_);
  sync::Mutex drain_mutex_;
  sync::CondVar drain_cv_;

  /// Every live connection, so shutdown() can reach in-flight query ids
  /// and pending outboxes without touching loop-thread-only state.
  sync::Mutex registry_mutex_;
  std::vector<std::weak_ptr<Connection>> registry_
      MLOC_GUARDED_BY(registry_mutex_);

  mutable sync::Mutex stats_mutex_;
  ServerStats stats_ MLOC_GUARDED_BY(stats_mutex_);
};

}  // namespace mloc::net
