#include "net/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <new>
#include <random>
#include <string>

namespace mloc::net {
namespace {

std::string errno_detail(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// 64 random bits for segment tokens and name suffixes. std::random_device
/// on Linux draws from the kernel CSPRNG, which is exactly what a
/// collision-avoidance token wants.
std::uint64_t random_u64() {
  static std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

}  // namespace

Result<std::unique_ptr<ShmServerSegment>> ShmServerSegment::create(
    std::uint64_t ring_bytes) {
  if (ring_bytes < kShmMinRingBytes || ring_bytes > (1ull << 40)) {
    return invalid_argument("shm ring size out of range");
  }
  const std::uint64_t map_bytes = kShmControlBytes + ring_bytes;

  int fd = -1;
  std::string name;
  // O_EXCL + a random suffix: a name collision (stale segment from a
  // crashed process) is never adopted, only avoided.
  for (int attempt = 0; attempt < 4 && fd < 0; ++attempt) {
    name = "/mloc-" + std::to_string(::getpid()) + "-" +
           std::to_string(random_u64());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0 && errno != EEXIST) {
      return io_error(errno_detail("shm_open"));
    }
  }
  if (fd < 0) return io_error("shm_open: could not find a free name");

  auto seg = std::unique_ptr<ShmServerSegment>(new ShmServerSegment());
  seg->linked_ = true;
  seg->info_.name = name;

  // posix_fallocate commits backing pages up front: a tmpfs with no room
  // refuses *here* with ENOSPC (clean fallback to TCP) instead of
  // delivering SIGBUS on the first ring write later.
  int rc = ::posix_fallocate(fd, 0, static_cast<off_t>(map_bytes));
  if (rc != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    seg->linked_ = false;
    errno = rc;
    return io_error(errno_detail("posix_fallocate(shm)"));
  }

  void* addr = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);  // the mapping keeps the segment alive
  if (addr == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    seg->linked_ = false;
    return io_error(errno_detail("mmap(shm)"));
  }

  seg->map_bytes_ = map_bytes;
  seg->ctrl_ = new (addr) ShmControl();
  seg->ctrl_->magic = kShmMagic;
  seg->ctrl_->layout_version = kShmLayoutVersion;
  seg->ctrl_->token = random_u64();
  seg->ctrl_->ring_bytes = ring_bytes;
  seg->ctrl_->data_offset = static_cast<std::uint32_t>(kShmControlBytes);
  seg->data_ = static_cast<std::uint8_t*>(addr) + kShmControlBytes;

  seg->info_.ring_bytes = ring_bytes;
  seg->info_.token = seg->ctrl_->token;
  seg->info_.data_offset = seg->ctrl_->data_offset;
  return seg;
}

ShmServerSegment::~ShmServerSegment() {
  unlink();
  if (ctrl_ != nullptr) {
    ::munmap(static_cast<void*>(ctrl_), map_bytes_);
  }
}

std::optional<ShmSlot> ShmServerSegment::try_alloc(
    std::uint64_t len) noexcept {
  const std::uint64_t ring = info_.ring_bytes;
  if (len == 0 || len > ring || len > UINT32_MAX) return std::nullopt;
  std::uint64_t off = produced_ % ring;
  std::uint64_t skip = 0;
  if (off + len > ring) {  // never wrap a payload: skip the tail
    skip = ring - off;
    off = 0;
  }
  const std::uint64_t consumed =
      ctrl_->consumed.load(std::memory_order_acquire);
  if (produced_ + skip + len - consumed > ring) return std::nullopt;  // full
  ShmSlot slot;
  slot.offset = off;
  slot.len = static_cast<std::uint32_t>(len);
  slot.release = produced_ + skip + len;
  slot.data = data_ + off;
  return slot;
}

void ShmServerSegment::publish(const ShmSlot& slot) noexcept {
  produced_ = slot.release;
  ctrl_->produced.store(slot.release, std::memory_order_release);
}

void ShmServerSegment::unlink() noexcept {
  if (linked_) {
    ::shm_unlink(info_.name.c_str());
    linked_ = false;
  }
}

Result<std::unique_ptr<ShmClientSegment>> ShmClientSegment::open(
    const ShmInfo& info) {
  if (info.ring_bytes < kShmMinRingBytes ||
      info.data_offset != kShmControlBytes) {
    return corrupt_data("shm offer geometry unsupported");
  }
  int fd = ::shm_open(info.name.c_str(), O_RDWR, 0);
  if (fd < 0) return io_error(errno_detail("shm_open"));

  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return io_error(errno_detail("fstat(shm)"));
  }
  const std::uint64_t map_bytes = kShmControlBytes + info.ring_bytes;
  if (static_cast<std::uint64_t>(st.st_size) < map_bytes) {
    ::close(fd);
    return corrupt_data("shm segment smaller than advertised");
  }
  void* addr = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) return io_error(errno_detail("mmap(shm)"));

  auto seg = std::unique_ptr<ShmClientSegment>(new ShmClientSegment());
  seg->ctrl_ = static_cast<ShmControl*>(addr);
  seg->map_bytes_ = map_bytes;
  if (seg->ctrl_->magic != kShmMagic ||
      seg->ctrl_->layout_version != kShmLayoutVersion ||
      seg->ctrl_->token != info.token ||
      seg->ctrl_->ring_bytes != info.ring_bytes ||
      seg->ctrl_->data_offset != info.data_offset) {
    return corrupt_data("shm control block does not match the offer");
  }
  seg->data_ =
      static_cast<const std::uint8_t*>(addr) + seg->ctrl_->data_offset;
  seg->ring_bytes_ = info.ring_bytes;
  return seg;
}

ShmClientSegment::~ShmClientSegment() {
  if (ctrl_ != nullptr) {
    ::munmap(static_cast<void*>(ctrl_), map_bytes_);
  }
}

Result<std::span<const std::uint8_t>> ShmClientSegment::view(
    std::uint64_t offset, std::uint32_t len, std::uint64_t release) const {
  if (len == 0 || len > ring_bytes_ || offset > ring_bytes_ - len) {
    return corrupt_data("shm descriptor outside the ring");
  }
  // A valid allocation satisfies (release - len) % ring == offset whether
  // or not the producer skipped the ring tail — cheap structural check.
  if (release < len || (release - len) % ring_bytes_ != offset) {
    return corrupt_data("shm descriptor inconsistent with ring discipline");
  }
  if (release <= released_) {
    return corrupt_data("shm descriptor for already-released bytes");
  }
  if (ctrl_->produced.load(std::memory_order_acquire) < release) {
    return corrupt_data("shm descriptor ahead of the producer cursor");
  }
  return std::span<const std::uint8_t>(data_ + offset, len);
}

void ShmClientSegment::release(std::uint64_t release_cursor) noexcept {
  if (release_cursor > released_) {
    released_ = release_cursor;
    ctrl_->consumed.store(release_cursor, std::memory_order_release);
  }
}

}  // namespace mloc::net
