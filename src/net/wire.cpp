#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"
#include "util/crc32.hpp"

// Response/stats arrays travel as raw element bytes so the server can
// scatter-gather them without a serialization pass; that shortcut is only
// byte-exact on a little-endian host (every platform MLOC targets).
static_assert(std::endian::native == std::endian::little,
              "wire codec requires a little-endian host");

namespace mloc::net {

namespace {

void put_le32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_le16(std::uint8_t* out, std::uint16_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_le64(std::uint8_t* out, std::uint64_t v) noexcept {
  put_le32(out, static_cast<std::uint32_t>(v));
  put_le32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_le16(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t get_le32(const std::uint8_t* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_le64(const std::uint8_t* in) noexcept {
  return static_cast<std::uint64_t>(get_le32(in)) |
         (static_cast<std::uint64_t>(get_le32(in + 4)) << 32);
}

std::span<const std::uint8_t> byte_view(const void* data,
                                        std::size_t bytes) noexcept {
  return {static_cast<const std::uint8_t*>(data), bytes};
}

void put_cache_stats(ByteWriter& w, const CacheStats& c) {
  w.put_u64(c.hits);
  w.put_u64(c.partial_hits);
  w.put_u64(c.misses);
  w.put_u64(c.bytes_saved);
}

Result<CacheStats> get_cache_stats(ByteReader& r) {
  CacheStats c;
  MLOC_ASSIGN_OR_RETURN(c.hits, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.partial_hits, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.misses, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.bytes_saved, r.get_u64());
  return c;
}

void put_exec_stats(ByteWriter& w, const ExecStats& e) {
  w.put_u64(e.bytes_planned);
  w.put_u64(e.bytes_read);
  w.put_u64(e.bytes_from_cache);
  w.put_u64(e.extents_naive);
  w.put_u64(e.extents_coalesced);
  w.put_u64(e.modeled_seeks);
}

Result<ExecStats> get_exec_stats(ByteReader& r) {
  ExecStats e;
  MLOC_ASSIGN_OR_RETURN(e.bytes_planned, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(e.bytes_read, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(e.bytes_from_cache, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(e.extents_naive, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(e.extents_coalesced, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(e.modeled_seeks, r.get_u64());
  return e;
}

void put_status(ByteWriter& w, const Status& st) {
  w.put_u16(static_cast<std::uint16_t>(st.code()));
  w.put_string(st.message());
}

/// Decode a carried Status into *out; the return value is the decode
/// outcome (Result<Status> would be ill-formed — value and error alternate
/// would collide).
Status get_status(ByteReader& r, Status* out) {
  std::uint16_t raw = 0;
  MLOC_ASSIGN_OR_RETURN(raw, r.get_u16());
  if (raw > static_cast<std::uint16_t>(ErrorCode::kCancelled)) {
    return corrupt_data("status frame carries an unknown error code");
  }
  std::string msg;
  MLOC_ASSIGN_OR_RETURN(msg, r.get_string());
  *out = Status(static_cast<ErrorCode>(raw), std::move(msg));
  return Status::ok();
}

constexpr std::uint8_t kReqHasVc = 1u << 0;
constexpr std::uint8_t kReqHasSc = 1u << 1;
constexpr std::uint8_t kReqValuesNeeded = 1u << 2;
constexpr std::uint8_t kReqMultivar = 1u << 3;

}  // namespace

bool frame_type_known(std::uint16_t raw) noexcept {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kOpenSession:
    case FrameType::kCloseSession:
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kStats:
    case FrameType::kSessionStats:
    case FrameType::kPing:
    case FrameType::kListVariables:
    case FrameType::kShmOffer:
    case FrameType::kShmAttach:
    case FrameType::kSessionOpened:
    case FrameType::kQueryResult:
    case FrameType::kStatsResult:
    case FrameType::kSessionStatsResult:
    case FrameType::kAck:
    case FrameType::kPong:
    case FrameType::kVariableList:
    case FrameType::kShmAccept:
    case FrameType::kShmResult:
      return true;
  }
  return false;
}

void encode_header(const FrameHeader& h, std::uint8_t* out) noexcept {
  put_le32(out, kMagic);
  put_le16(out + 4, h.version);
  put_le16(out + 6, static_cast<std::uint16_t>(h.type));
  put_le64(out + 8, h.request_id);
  put_le32(out + 16, h.payload_len);
  put_le32(out + 20, h.payload_crc);
  put_le32(out + 24, crc32(byte_view(out, 24)));
}

Result<FrameHeader> decode_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) {
    return corrupt_data("frame header truncated");
  }
  const std::uint8_t* b = bytes.data();
  if (get_le32(b) != kMagic) {
    return corrupt_data("bad frame magic");
  }
  if (get_le32(b + 24) != crc32(byte_view(b, 24))) {
    return corrupt_data("frame header CRC mismatch");
  }
  FrameHeader h;
  h.version = get_le16(b + 4);
  if (h.version != kProtocolVersion) {
    return unsupported("unsupported wire protocol version " +
                       std::to_string(h.version));
  }
  const std::uint16_t raw_type = get_le16(b + 6);
  h.request_id = get_le64(b + 8);
  h.payload_len = get_le32(b + 16);
  h.payload_crc = get_le32(b + 20);
  if (h.payload_len > kMaxPayloadBytes) {
    return corrupt_data("frame payload length exceeds the protocol maximum");
  }
  if (!frame_type_known(raw_type)) {
    return unsupported("unknown frame type " + std::to_string(raw_type));
  }
  h.type = static_cast<FrameType>(raw_type);
  return h;
}

Status verify_payload(const FrameHeader& h,
                      std::span<const std::uint8_t> payload) {
  if (payload.size() != h.payload_len) {
    return corrupt_data("frame payload length mismatch");
  }
  if (crc32(payload) != h.payload_crc) {
    return corrupt_data("frame payload CRC mismatch");
  }
  return Status::ok();
}

Bytes encode_frame(FrameType type, std::uint64_t request_id,
                   std::span<const std::uint8_t> payload) {
  MLOC_CHECK(payload.size() <= kMaxPayloadBytes);
  FrameHeader h;
  h.type = type;
  h.request_id = request_id;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.payload_crc = crc32(payload);
  Bytes out(kHeaderBytes + payload.size());
  encode_header(h, out.data());
  if (!payload.empty()) {
    std::memcpy(out.data() + kHeaderBytes, payload.data(), payload.size());
  }
  return out;
}

// --------------------------------------------------------------- payloads

Bytes encode_open_session(std::string_view label) {
  ByteWriter w;
  w.put_string(label);
  return std::move(w).take();
}

Result<std::string> decode_open_session(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  std::string label;
  MLOC_ASSIGN_OR_RETURN(label, r.get_string());
  if (!r.exhausted()) return corrupt_data("open-session payload has trailing bytes");
  return label;
}

Bytes encode_session_opened(service::SessionId id) {
  ByteWriter w;
  w.put_u64(id);
  return std::move(w).take();
}

Result<service::SessionId> decode_session_opened(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  service::SessionId id = 0;
  MLOC_ASSIGN_OR_RETURN(id, r.get_u64());
  if (!r.exhausted()) return corrupt_data("session-opened payload has trailing bytes");
  return id;
}

Bytes encode_request(const service::Request& req) {
  ByteWriter w;
  std::uint8_t flags = 0;
  if (req.query.vc.has_value()) flags |= kReqHasVc;
  if (req.query.sc.has_value()) flags |= kReqHasSc;
  if (req.query.values_needed) flags |= kReqValuesNeeded;
  if (req.multivar.has_value()) flags |= kReqMultivar;
  w.put_u8(flags);
  w.put_string(req.var);
  w.put_i64(req.query.plod_level);
  w.put_i64(req.priority);
  w.put_f64(req.deadline_s);
  w.put_i64(req.num_ranks);
  if (req.query.vc.has_value()) {
    w.put_f64(req.query.vc->lo);
    w.put_f64(req.query.vc->hi);
  }
  if (req.query.sc.has_value()) {
    const Region& sc = *req.query.sc;
    w.put_u8(static_cast<std::uint8_t>(sc.ndims()));
    for (int d = 0; d < sc.ndims(); ++d) {
      w.put_u32(sc.lo(d));
      w.put_u32(sc.hi(d));
    }
  }
  if (req.multivar.has_value()) {
    const service::MultivarSpec& mv = *req.multivar;
    w.put_varint(mv.preds.size());
    for (const auto& pred : mv.preds) {
      w.put_string(pred.var);
      w.put_f64(pred.vc.lo);
      w.put_f64(pred.vc.hi);
    }
    w.put_u8(static_cast<std::uint8_t>(mv.combine));
    w.put_string(mv.fetch_var);
  }
  return std::move(w).take();
}

Result<service::Request> decode_request(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  service::Request req;
  std::uint8_t flags = 0;
  MLOC_ASSIGN_OR_RETURN(flags, r.get_u8());
  if ((flags & ~(kReqHasVc | kReqHasSc | kReqValuesNeeded | kReqMultivar)) !=
      0) {
    return corrupt_data("request frame carries unknown flags");
  }
  MLOC_ASSIGN_OR_RETURN(req.var, r.get_string());
  std::int64_t plod = 0;
  MLOC_ASSIGN_OR_RETURN(plod, r.get_i64());
  req.query.plod_level = static_cast<int>(plod);
  std::int64_t priority = 0;
  MLOC_ASSIGN_OR_RETURN(priority, r.get_i64());
  req.priority = static_cast<int>(priority);
  MLOC_ASSIGN_OR_RETURN(req.deadline_s, r.get_f64());
  std::int64_t ranks = 0;
  MLOC_ASSIGN_OR_RETURN(ranks, r.get_i64());
  req.num_ranks = static_cast<int>(ranks);
  req.query.values_needed = (flags & kReqValuesNeeded) != 0;
  if ((flags & kReqHasVc) != 0) {
    ValueConstraint vc;
    MLOC_ASSIGN_OR_RETURN(vc.lo, r.get_f64());
    MLOC_ASSIGN_OR_RETURN(vc.hi, r.get_f64());
    req.query.vc = vc;
  }
  if ((flags & kReqHasSc) != 0) {
    std::uint8_t ndims = 0;
    MLOC_ASSIGN_OR_RETURN(ndims, r.get_u8());
    if (ndims < 1 || ndims > NDShape::kMaxDims) {
      return corrupt_data("spatial constraint has an invalid dimension count");
    }
    Coord lo{}, hi{};
    for (int d = 0; d < ndims; ++d) {
      MLOC_ASSIGN_OR_RETURN(lo[static_cast<std::size_t>(d)], r.get_u32());
      MLOC_ASSIGN_OR_RETURN(hi[static_cast<std::size_t>(d)], r.get_u32());
      if (lo[static_cast<std::size_t>(d)] > hi[static_cast<std::size_t>(d)]) {
        return corrupt_data("spatial constraint has lo > hi");
      }
    }
    req.query.sc = Region(ndims, lo, hi);
  }
  if ((flags & kReqMultivar) != 0) {
    std::uint64_t npreds = 0;
    MLOC_ASSIGN_OR_RETURN(npreds, r.get_varint());
    // Each predicate occupies >= 17 payload bytes, so bound by what could
    // actually fit — rejects hostile counts before the reserve below.
    if (npreds > p.size() / 17 + 1) {
      return corrupt_data("multivar predicate count exceeds the payload");
    }
    service::MultivarSpec mv;
    mv.preds.reserve(npreds);
    for (std::uint64_t i = 0; i < npreds; ++i) {
      MlocStore::VarConstraint pred;
      MLOC_ASSIGN_OR_RETURN(pred.var, r.get_string());
      MLOC_ASSIGN_OR_RETURN(pred.vc.lo, r.get_f64());
      MLOC_ASSIGN_OR_RETURN(pred.vc.hi, r.get_f64());
      mv.preds.push_back(std::move(pred));
    }
    std::uint8_t combine = 0;
    MLOC_ASSIGN_OR_RETURN(combine, r.get_u8());
    if (combine > static_cast<std::uint8_t>(MlocStore::Combine::kOr)) {
      return corrupt_data("multivar combine mode is invalid");
    }
    mv.combine = static_cast<MlocStore::Combine>(combine);
    MLOC_ASSIGN_OR_RETURN(mv.fetch_var, r.get_string());
    req.multivar = std::move(mv);
  }
  if (!r.exhausted()) return corrupt_data("request payload has trailing bytes");
  return req;
}

Bytes encode_cancel(std::uint64_t target_request_id) {
  ByteWriter w;
  w.put_u64(target_request_id);
  return std::move(w).take();
}

Result<std::uint64_t> decode_cancel(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  std::uint64_t target = 0;
  MLOC_ASSIGN_OR_RETURN(target, r.get_u64());
  if (!r.exhausted()) return corrupt_data("cancel payload has trailing bytes");
  return target;
}

Bytes encode_status(const Status& st) {
  ByteWriter w;
  put_status(w, st);
  return std::move(w).take();
}

Result<Ack> decode_status(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  Ack ack;
  MLOC_RETURN_IF_ERROR(get_status(r, &ack.carried));
  if (!r.exhausted()) return corrupt_data("status payload has trailing bytes");
  return ack;
}

namespace {

/// Everything of a Response except the trailing arrays.
void put_response_prefix(ByteWriter& w, const service::Response& resp) {
  put_status(w, resp.status);
  const service::ServiceStats& st = resp.stats;
  w.put_u64(st.query_id);
  w.put_u64(st.session);
  w.put_f64(st.queue_wait_s);
  w.put_f64(st.exec_wall_s);
  w.put_f64(st.modeled_s);
  put_cache_stats(w, st.cache);
  put_exec_stats(w, st.exec);
  w.put_u8(st.via_shm ? 1 : 0);
  const QueryResult& res = resp.result;
  w.put_f64(res.times.io);
  w.put_f64(res.times.decompress);
  w.put_f64(res.times.reconstruct);
  w.put_u64(res.bins_touched);
  w.put_u64(res.aligned_bins);
  w.put_u64(res.fragments_read);
  w.put_u64(res.fragments_skipped);
  w.put_u64(res.bytes_read);
  put_cache_stats(w, res.cache);
  put_exec_stats(w, res.exec);
  w.put_u64(res.positions.size());
  w.put_u64(res.values.size());
}

}  // namespace

Bytes encode_response_prefix(const service::Response& resp) {
  ByteWriter w;
  put_response_prefix(w, resp);
  return std::move(w).take();
}

EncodedResponse encode_response_frame(std::uint64_t request_id,
                                      service::Response resp) {
  ByteWriter prefix;
  put_response_prefix(prefix, resp);

  EncodedResponse out;
  out.positions = std::move(resp.result.positions);
  out.values = std::move(resp.result.values);

  const std::span<const std::uint8_t> pos_bytes =
      byte_view(out.positions.data(),
                out.positions.size() * sizeof(std::uint64_t));
  const std::span<const std::uint8_t> val_bytes =
      byte_view(out.values.data(), out.values.size() * sizeof(double));

  FrameHeader h;
  h.type = FrameType::kQueryResult;
  h.request_id = request_id;
  const std::size_t payload_len =
      prefix.size() + pos_bytes.size() + val_bytes.size();
  MLOC_CHECK(payload_len <= kMaxPayloadBytes);
  h.payload_len = static_cast<std::uint32_t>(payload_len);
  h.payload_crc = crc32(val_bytes, crc32(pos_bytes, crc32(prefix.bytes())));

  out.head.resize(kHeaderBytes + prefix.size());
  encode_header(h, out.head.data());
  std::memcpy(out.head.data() + kHeaderBytes, prefix.bytes().data(),
              prefix.size());
  return out;
}

Result<service::Response> decode_response(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  service::Response resp;
  MLOC_RETURN_IF_ERROR(get_status(r, &resp.status));
  service::ServiceStats& st = resp.stats;
  MLOC_ASSIGN_OR_RETURN(st.query_id, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(st.session, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(st.queue_wait_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(st.exec_wall_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(st.modeled_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(st.cache, get_cache_stats(r));
  MLOC_ASSIGN_OR_RETURN(st.exec, get_exec_stats(r));
  std::uint8_t via_shm = 0;
  MLOC_ASSIGN_OR_RETURN(via_shm, r.get_u8());
  st.via_shm = via_shm != 0;
  QueryResult& res = resp.result;
  MLOC_ASSIGN_OR_RETURN(res.times.io, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(res.times.decompress, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(res.times.reconstruct, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(res.bins_touched, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(res.aligned_bins, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(res.fragments_read, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(res.fragments_skipped, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(res.bytes_read, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(res.cache, get_cache_stats(r));
  MLOC_ASSIGN_OR_RETURN(res.exec, get_exec_stats(r));
  std::uint64_t npos = 0, nval = 0;
  MLOC_ASSIGN_OR_RETURN(npos, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(nval, r.get_u64());
  const std::uint64_t array_bytes = npos * 8 + nval * 8;
  if (npos > kMaxPayloadBytes / 8 || nval > kMaxPayloadBytes / 8 ||
      array_bytes != r.remaining()) {
    return corrupt_data("response array lengths do not match the payload");
  }
  std::span<const std::uint8_t> pos_bytes;
  MLOC_ASSIGN_OR_RETURN(pos_bytes, r.get_bytes(npos * 8));
  res.positions.resize(npos);
  if (!pos_bytes.empty()) {
    std::memcpy(res.positions.data(), pos_bytes.data(), pos_bytes.size());
  }
  std::span<const std::uint8_t> val_bytes;
  MLOC_ASSIGN_OR_RETURN(val_bytes, r.get_bytes(nval * 8));
  res.values.resize(nval);
  if (!val_bytes.empty()) {
    std::memcpy(res.values.data(), val_bytes.data(), val_bytes.size());
  }
  return resp;
}

Bytes encode_stats(const StatsSnapshot& s) {
  ByteWriter w;
  const service::AggregateStats& a = s.agg;
  w.put_u64(a.submitted);
  w.put_u64(a.completed);
  w.put_u64(a.failed);
  w.put_u64(a.rejected);
  w.put_u64(a.expired);
  w.put_u64(a.cancelled);
  w.put_u64(a.queued);
  w.put_u64(a.executing);
  put_cache_stats(w, a.cache);
  put_exec_stats(w, a.exec);
  w.put_f64(a.total_queue_wait_s);
  w.put_f64(a.total_exec_wall_s);
  w.put_f64(a.total_modeled_s);
  w.put_u64(a.peak_queue_depth);
  w.put_u64(a.sessions_opened);
  w.put_u64(a.sessions_open);
  w.put_u64(a.ingests);
  w.put_u64(a.ingest_failures);
  w.put_u64(a.responses_shm);
  w.put_u64(a.responses_tcp);
  w.put_u64(a.bytes_shm);
  w.put_u64(a.bytes_tcp);
  w.put_u64(a.ingest.cells_routed);
  w.put_u64(a.ingest.fragments_encoded);
  w.put_u64(a.ingest.bins_written);
  w.put_u64(a.ingest.bytes_written);
  w.put_f64(a.ingest.partition_s);
  w.put_f64(a.ingest.encode_s);
  w.put_f64(a.ingest.fold_s);
  w.put_f64(a.ingest.flush_s);
  w.put_f64(a.ingest.wall_s);
  w.put_i64(a.ingest.threads);
  w.put_u8(a.ingest.write_behind ? 1 : 0);
  const service::FragmentCache::Stats& c = s.cache;
  w.put_u64(c.lookups);
  w.put_u64(c.hits);
  w.put_u64(c.misses);
  w.put_u64(c.insertions);
  w.put_u64(c.upgrades);
  w.put_u64(c.evictions);
  w.put_u64(c.bytes_cached);
  w.put_u64(c.entries);
  return std::move(w).take();
}

Result<StatsSnapshot> decode_stats(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  StatsSnapshot s;
  service::AggregateStats& a = s.agg;
  MLOC_ASSIGN_OR_RETURN(a.submitted, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.completed, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.failed, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.rejected, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.expired, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.cancelled, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.queued, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.executing, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.cache, get_cache_stats(r));
  MLOC_ASSIGN_OR_RETURN(a.exec, get_exec_stats(r));
  MLOC_ASSIGN_OR_RETURN(a.total_queue_wait_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(a.total_exec_wall_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(a.total_modeled_s, r.get_f64());
  std::uint64_t peak = 0;
  MLOC_ASSIGN_OR_RETURN(peak, r.get_u64());
  a.peak_queue_depth = static_cast<std::size_t>(peak);
  MLOC_ASSIGN_OR_RETURN(a.sessions_opened, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.sessions_open, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.ingests, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.ingest_failures, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.responses_shm, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.responses_tcp, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.bytes_shm, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.bytes_tcp, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.cells_routed, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.fragments_encoded, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.bins_written, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.bytes_written, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.partition_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.encode_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.fold_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.flush_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(a.ingest.wall_s, r.get_f64());
  std::int64_t threads = 0;
  MLOC_ASSIGN_OR_RETURN(threads, r.get_i64());
  a.ingest.threads = static_cast<int>(threads);
  std::uint8_t write_behind = 0;
  MLOC_ASSIGN_OR_RETURN(write_behind, r.get_u8());
  a.ingest.write_behind = write_behind != 0;
  service::FragmentCache::Stats& c = s.cache;
  MLOC_ASSIGN_OR_RETURN(c.lookups, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.hits, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.misses, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.insertions, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.upgrades, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.evictions, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.bytes_cached, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(c.entries, r.get_u64());
  if (!r.exhausted()) return corrupt_data("stats payload has trailing bytes");
  return s;
}

Bytes encode_session_stats(const service::SessionStats& s) {
  ByteWriter w;
  w.put_string(s.label);
  w.put_u8(s.open ? 1 : 0);
  w.put_u64(s.submitted);
  w.put_u64(s.completed);
  w.put_u64(s.failed);
  w.put_u64(s.rejected);
  put_cache_stats(w, s.cache);
  put_exec_stats(w, s.exec);
  w.put_f64(s.total_queue_wait_s);
  w.put_f64(s.total_modeled_s);
  return std::move(w).take();
}

Result<service::SessionStats> decode_session_stats(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  service::SessionStats s;
  MLOC_ASSIGN_OR_RETURN(s.label, r.get_string());
  std::uint8_t open = 0;
  MLOC_ASSIGN_OR_RETURN(open, r.get_u8());
  s.open = open != 0;
  MLOC_ASSIGN_OR_RETURN(s.submitted, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(s.completed, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(s.failed, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(s.rejected, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(s.cache, get_cache_stats(r));
  MLOC_ASSIGN_OR_RETURN(s.exec, get_exec_stats(r));
  MLOC_ASSIGN_OR_RETURN(s.total_queue_wait_s, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(s.total_modeled_s, r.get_f64());
  if (!r.exhausted()) {
    return corrupt_data("session-stats payload has trailing bytes");
  }
  return s;
}

Bytes encode_shm_offer(std::uint64_t ring_bytes) {
  ByteWriter w;
  w.put_u64(ring_bytes);
  return std::move(w).take();
}

Result<std::uint64_t> decode_shm_offer(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  std::uint64_t ring_bytes = 0;
  MLOC_ASSIGN_OR_RETURN(ring_bytes, r.get_u64());
  if (!r.exhausted()) {
    return corrupt_data("shm-offer payload has trailing bytes");
  }
  return ring_bytes;
}

Bytes encode_shm_accept(const ShmInfo& info) {
  ByteWriter w;
  w.put_string(info.name);
  w.put_u64(info.ring_bytes);
  w.put_u64(info.token);
  w.put_u32(info.data_offset);
  return std::move(w).take();
}

Result<ShmInfo> decode_shm_accept(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  ShmInfo info;
  MLOC_ASSIGN_OR_RETURN(info.name, r.get_string());
  MLOC_ASSIGN_OR_RETURN(info.ring_bytes, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(info.token, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(info.data_offset, r.get_u32());
  if (info.name.empty() || info.name.front() != '/') {
    return corrupt_data("shm-accept segment name is not absolute");
  }
  if (!r.exhausted()) {
    return corrupt_data("shm-accept payload has trailing bytes");
  }
  return info;
}

Bytes encode_shm_attach(bool mapped) {
  ByteWriter w;
  w.put_u8(mapped ? 1 : 0);
  return std::move(w).take();
}

Result<bool> decode_shm_attach(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  std::uint8_t mapped = 0;
  MLOC_ASSIGN_OR_RETURN(mapped, r.get_u8());
  if (mapped > 1) return corrupt_data("shm-attach flag is not a boolean");
  if (!r.exhausted()) {
    return corrupt_data("shm-attach payload has trailing bytes");
  }
  return mapped != 0;
}

Bytes encode_shm_result(const ShmDescriptor& d) {
  ByteWriter w;
  w.put_u64(d.offset);
  w.put_u32(d.len);
  w.put_u64(d.release);
  return std::move(w).take();
}

Result<ShmDescriptor> decode_shm_result(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  ShmDescriptor d;
  MLOC_ASSIGN_OR_RETURN(d.offset, r.get_u64());
  MLOC_ASSIGN_OR_RETURN(d.len, r.get_u32());
  MLOC_ASSIGN_OR_RETURN(d.release, r.get_u64());
  if (!r.exhausted()) {
    return corrupt_data("shm-result payload has trailing bytes");
  }
  return d;
}

Bytes encode_variable_list(const std::vector<MlocStore::VariableDesc>& vars) {
  ByteWriter w;
  w.put_varint(vars.size());
  for (const MlocStore::VariableDesc& v : vars) {
    w.put_string(v.name);
    v.layout.serialize(w);
    w.put_u64(v.epoch);
    w.put_u8(v.plod_capable ? 1 : 0);
    w.put_varint(static_cast<std::uint64_t>(v.num_groups));
  }
  return std::move(w).take();
}

Result<std::vector<MlocStore::VariableDesc>> decode_variable_list(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  std::uint64_t count = 0;
  MLOC_ASSIGN_OR_RETURN(count, r.get_varint());
  if (count > 1u << 20) {
    return corrupt_data("variable list claims an implausible count");
  }
  std::vector<MlocStore::VariableDesc> vars;
  vars.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    MlocStore::VariableDesc v;
    MLOC_ASSIGN_OR_RETURN(v.name, r.get_string());
    MLOC_ASSIGN_OR_RETURN(v.layout, VariableLayout::deserialize(r));
    MLOC_ASSIGN_OR_RETURN(v.epoch, r.get_u64());
    std::uint8_t plod = 0;
    MLOC_ASSIGN_OR_RETURN(plod, r.get_u8());
    v.plod_capable = plod != 0;
    std::uint64_t groups = 0;
    MLOC_ASSIGN_OR_RETURN(groups, r.get_varint());
    v.num_groups = static_cast<int>(groups);
    vars.push_back(std::move(v));
  }
  if (!r.exhausted()) {
    return corrupt_data("variable-list payload has trailing bytes");
  }
  return vars;
}

}  // namespace mloc::net
