// Shared-memory transport segment for co-located clients — the zero-copy
// fast path negotiated over the wire protocol (kShmOffer/kShmAccept).
//
// A segment is one POSIX shm object (`shm_open`) per client connection:
//
//   offset            size        contents
//        0            4096        control block (ShmControl, page-aligned)
//   kShmControlBytes  ring_bytes  response byte ring
//
// The ring is a single-producer / single-consumer *byte* ring with
// monotonic 64-bit cursors, not fixed-size slots: response payloads vary
// from tens of bytes (errors) to hundreds of kilobytes (region reads), so
// each response claims exactly the bytes it needs. An allocation never
// wraps mid-payload — when the tail of the ring is too short, the
// remainder is skipped (accounted into the cursor) and the payload starts
// at offset 0, so every published payload is contiguous in memory.
//
// Cursor protocol (the only cross-process synchronization):
//   * `produced` — advanced by the server with a release store after the
//     payload bytes are written; the client reads it with acquire before
//     touching a descriptor's bytes.
//   * `consumed` — advanced by the client with a release store after it
//     has copied a payload out; the server reads it with acquire when
//     sizing the next allocation.
// An allocation of `len` bytes at cursor `p` fits iff
// `p + skip + len - consumed <= ring_bytes`. Descriptors (offset, len,
// release cursor) travel over the TCP connection as kShmResult frames, in
// frame order, so the single consumer releases strictly in cursor order.
//
// Crash safety: the server `shm_unlink`s the segment the moment the
// client confirms its mapping (kShmAttach), so the name exists only for
// the handshake window; after that the segment lives exactly as long as
// the two mappings. A client that dies mid-read just drops its mapping —
// the server reclaims everything by unmapping on disconnect, and the
// kernel frees the pages. No slot ever needs individual reclamation.
//
// Thread safety: producer calls (try_alloc/publish) are externally
// serialized by the owning connection's mutex (see server.cpp); the
// consumer side is single-threaded (the Client). The cross-process
// cursors are C++ atomics, which shm placement requires to be
// address-free — statically asserted below.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "util/status.hpp"

namespace mloc::net {

inline constexpr std::uint32_t kShmMagic = 0x4D48534Du;  // "MSHM" as LE bytes
/// Bumps on any change to ShmControl or the ring discipline.
inline constexpr std::uint32_t kShmLayoutVersion = 1;
/// Control block size == data region offset; one page keeps the ring
/// page-aligned and leaves room for future control fields.
inline constexpr std::uint64_t kShmControlBytes = 4096;
/// Ring size requests are clamped into [min, server's configured max].
inline constexpr std::uint64_t kShmMinRingBytes = 1u << 12;

/// The first page of every segment. The server placement-constructs it at
/// creation; the client validates magic/version/token/geometry after
/// mapping before trusting anything else.
struct ShmControl {
  std::uint32_t magic = 0;
  std::uint32_t layout_version = 0;
  /// Random per-segment value, echoed in kShmAccept: a client that maps a
  /// stale or foreign segment by name collision refuses it on mismatch.
  std::uint64_t token = 0;
  std::uint64_t ring_bytes = 0;
  std::uint32_t data_offset = 0;
  std::uint32_t reserved = 0;
  std::atomic<std::uint64_t> produced{0};  ///< server: bytes published
  std::atomic<std::uint64_t> consumed{0};  ///< client: bytes released
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "cross-process ring cursors must be address-free atomics");
static_assert(sizeof(ShmControl) <= kShmControlBytes);

/// Segment identity + geometry as advertised in the kShmAccept frame.
struct ShmInfo {
  std::string name;  ///< shm_open name ("/mloc-...")
  std::uint64_t ring_bytes = 0;
  std::uint64_t token = 0;
  std::uint32_t data_offset = 0;
};

/// One claimed ring extent. `data` points into the producer's mapping;
/// `release` is the producer cursor after this allocation (what the
/// consumer stores into `consumed` once done).
struct ShmSlot {
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  std::uint64_t release = 0;
  std::uint8_t* data = nullptr;
};

/// Producer (server) side: creates, maps, and eventually unlinks the
/// segment. Destruction unmaps and unlinks-if-still-linked, so an
/// abandoned handshake leaves nothing behind in /dev/shm.
class ShmServerSegment {
 public:
  /// shm_open(O_CREAT|O_EXCL) + posix_fallocate (so a full tmpfs refuses
  /// here with a clean Status instead of SIGBUS on first touch) + mmap.
  [[nodiscard]] static Result<std::unique_ptr<ShmServerSegment>> create(
      std::uint64_t ring_bytes);
  ~ShmServerSegment();

  ShmServerSegment(const ShmServerSegment&) = delete;
  ShmServerSegment& operator=(const ShmServerSegment&) = delete;

  [[nodiscard]] const ShmInfo& info() const noexcept { return info_; }

  /// Claim `len` contiguous bytes, or nullopt when the ring cannot hold
  /// them right now (full, or len exceeds the ring outright) — the caller
  /// falls back to the TCP frame path. Caller must publish() or abandon
  /// the slot before the next try_alloc (single producer).
  [[nodiscard]] std::optional<ShmSlot> try_alloc(std::uint64_t len) noexcept;

  /// Release-publish the slot's bytes to the consumer. Call after the
  /// payload is fully written into slot.data.
  void publish(const ShmSlot& slot) noexcept;

  /// Remove the name from /dev/shm (idempotent). Called once the client
  /// confirms its mapping; the segment stays alive through the mappings.
  void unlink() noexcept;

 private:
  ShmServerSegment() = default;

  ShmInfo info_;
  ShmControl* ctrl_ = nullptr;  ///< start of the mapping
  std::uint8_t* data_ = nullptr;
  std::uint64_t map_bytes_ = 0;
  /// Producer-local mirror of ctrl_->produced (only this side writes it).
  std::uint64_t produced_ = 0;
  bool linked_ = false;
};

/// Consumer (client) side: maps an offered segment and validates
/// descriptors before exposing their bytes.
class ShmClientSegment {
 public:
  /// shm_open + mmap + control-block validation (magic, layout version,
  /// token, geometry vs the mapped size). Any mismatch is a clean error
  /// and the caller reports kShmAttach{mapped=false} to stay on TCP.
  [[nodiscard]] static Result<std::unique_ptr<ShmClientSegment>> open(
      const ShmInfo& info);
  ~ShmClientSegment();

  ShmClientSegment(const ShmClientSegment&) = delete;
  ShmClientSegment& operator=(const ShmClientSegment&) = delete;

  /// Validate a kShmResult descriptor against the ring geometry and the
  /// producer cursor (acquire), returning a view of the payload bytes in
  /// place. The view is valid until release().
  [[nodiscard]] Result<std::span<const std::uint8_t>> view(
      std::uint64_t offset, std::uint32_t len, std::uint64_t release) const;

  /// Hand the bytes up to cursor `release` back to the producer
  /// (release-store into `consumed`). Descriptors arrive in cursor order
  /// over TCP, so monotonicity is enforced, not assumed.
  void release(std::uint64_t release_cursor) noexcept;

 private:
  ShmClientSegment() = default;

  ShmControl* ctrl_ = nullptr;
  const std::uint8_t* data_ = nullptr;
  std::uint64_t ring_bytes_ = 0;
  std::uint64_t map_bytes_ = 0;
  std::uint64_t released_ = 0;  ///< consumer-local mirror of consumed
};

}  // namespace mloc::net
