#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace mloc::net {

Status Client::connect(const std::string& host, std::uint16_t port) {
  if (fd_ >= 0) return failed_precondition("client already connected");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument("bad server host: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return io_error("socket: " + std::string(strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status st = io_error("connect " + host + ":" + std::to_string(port) +
                         ": " + std::string(strerror(errno)));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  broken_ = Status::ok();
  next_id_ = 1;
  rbuf_.clear();
  stashed_.clear();
  return Status::ok();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  stashed_.clear();
  shm_.reset();
}

Status Client::fail(Status st) {
  broken_ = st;
  close();
  return st;
}

Status Client::send_all(const Bytes& frame) {
  if (fd_ < 0) {
    return broken_.is_ok() ? failed_precondition("client not connected")
                           : broken_;
  }
  std::size_t off = 0;
  while (off < frame.size()) {
    ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(io_error("send: " + std::string(strerror(errno))));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<Client::Stash> Client::wait_frame(std::uint64_t request_id) {
  for (;;) {
    if (auto it = stashed_.find(request_id); it != stashed_.end()) {
      Stash s = std::move(it->second);
      stashed_.erase(it);
      return s;
    }
    if (fd_ < 0) {
      return broken_.is_ok() ? failed_precondition("client not connected")
                             : broken_;
    }

    // Parse every complete frame already buffered before reading more.
    bool parsed = false;
    while (rbuf_.size() >= kHeaderBytes) {
      auto h = decode_header({rbuf_.data(), kHeaderBytes});
      if (!h.is_ok()) return fail(h.status());
      const std::size_t need = kHeaderBytes + h.value().payload_len;
      if (rbuf_.size() < need) break;
      std::span<const std::uint8_t> payload(rbuf_.data() + kHeaderBytes,
                                            h.value().payload_len);
      if (Status vst = verify_payload(h.value(), payload); !vst.is_ok()) {
        return fail(std::move(vst));
      }
      if (h.value().type == FrameType::kShmResult) {
        // Decode straight out of the ring, then release the bytes right
        // away: descriptors arrive in cursor order, so prompt release is
        // what keeps the producer from backpressuring into TCP.
        if (shm_ == nullptr) {
          return fail(corrupt_data("shm result without an attached segment"));
        }
        auto d = decode_shm_result(payload);
        if (!d.is_ok()) return fail(d.status());
        auto view =
            shm_->view(d.value().offset, d.value().len, d.value().release);
        if (!view.is_ok()) return fail(view.status());
        auto resp = decode_response(view.value());
        shm_->release(d.value().release);
        if (!resp.is_ok()) return fail(resp.status());
        Stash s;
        s.type = FrameType::kQueryResult;
        s.decoded = std::move(resp).value();
        stashed_.emplace(h.value().request_id, std::move(s));
      } else {
        stashed_.emplace(
            h.value().request_id,
            Stash{h.value().type, Bytes(payload.begin(), payload.end()), {}});
      }
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(need));
      parsed = true;
    }
    if (parsed) continue;

    std::array<std::uint8_t, 64 * 1024> buf;
    ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n == 0) return fail(io_error("server closed the connection"));
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(io_error("recv: " + std::string(strerror(errno))));
    }
    rbuf_.insert(rbuf_.end(), buf.data(), buf.data() + n);
  }
}

Status Client::ping() {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(send_all(encode_frame(FrameType::kPing, id, {})));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(id));
  if (s.type != FrameType::kPong) {
    return fail(corrupt_data("unexpected reply to ping"));
  }
  return Status::ok();
}

Result<service::SessionId> Client::open_session(std::string_view label) {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(send_all(encode_frame(FrameType::kOpenSession, id,
                                             encode_open_session(label))));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(id));
  if (s.type == FrameType::kAck) {
    MLOC_ASSIGN_OR_RETURN(Ack ack, decode_status(s.payload));
    return ack.carried.is_ok()
               ? internal_error("session refused without a reason")
               : ack.carried;
  }
  if (s.type != FrameType::kSessionOpened) {
    return fail(corrupt_data("unexpected reply to open_session"));
  }
  return decode_session_opened(s.payload);
}

Status Client::close_session() {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(
      send_all(encode_frame(FrameType::kCloseSession, id, {})));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(id));
  if (s.type != FrameType::kAck) {
    return fail(corrupt_data("unexpected reply to close_session"));
  }
  MLOC_ASSIGN_OR_RETURN(Ack ack, decode_status(s.payload));
  return ack.carried;
}

Status Client::enable_shm(std::uint64_t ring_bytes) {
  if (fd_ < 0) {
    return broken_.is_ok() ? failed_precondition("client not connected")
                           : broken_;
  }
  if (shm_ != nullptr) return failed_precondition("shm already active");

  const std::uint64_t offer_id = next_id_++;
  MLOC_RETURN_IF_ERROR(send_all(encode_frame(FrameType::kShmOffer, offer_id,
                                             encode_shm_offer(ring_bytes))));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(offer_id));
  if (s.type == FrameType::kAck) {
    // Server refused (disabled, no segment room): stay on TCP.
    MLOC_ASSIGN_OR_RETURN(Ack ack, decode_status(s.payload));
    return ack.carried.is_ok()
               ? internal_error("shm offer refused without a reason")
               : ack.carried;
  }
  if (s.type != FrameType::kShmAccept) {
    return fail(corrupt_data("unexpected reply to shm offer"));
  }
  auto info = decode_shm_accept(s.payload);
  if (!info.is_ok()) return fail(info.status());

  auto seg = ShmClientSegment::open(info.value());
  // Report the mapping outcome either way; mapped=false tells the server
  // to tear the segment down while this connection stays on TCP.
  // On success the segment must be installed *before* waiting for the
  // ack: the server starts using the ring the moment it processes the
  // attach, so a response can precede the ack in the stream.
  if (seg.is_ok()) shm_ = std::move(seg).value();
  const std::uint64_t attach_id = next_id_++;
  Status sent = send_all(encode_frame(FrameType::kShmAttach, attach_id,
                                      encode_shm_attach(shm_ != nullptr)));
  if (!sent.is_ok()) {
    shm_.reset();
    return sent;
  }
  auto a = wait_frame(attach_id);
  if (!a.is_ok()) {
    shm_.reset();
    return a.status();
  }
  if (a.value().type != FrameType::kAck) {
    shm_.reset();
    return fail(corrupt_data("unexpected reply to shm attach"));
  }
  auto ack = decode_status(a.value().payload);
  if (!ack.is_ok()) {
    shm_.reset();
    return ack.status();
  }
  if (shm_ == nullptr) return seg.status();  // mapping failed; TCP continues
  if (!ack.value().carried.is_ok()) {
    shm_.reset();
    return ack.value().carried;
  }
  return Status::ok();
}

Result<std::uint64_t> Client::send_query(const service::Request& req) {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(
      send_all(encode_frame(FrameType::kQuery, id, encode_request(req))));
  return id;
}

Result<service::Response> Client::wait(std::uint64_t request_id) {
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(request_id));
  if (s.type != FrameType::kQueryResult) {
    return fail(corrupt_data("unexpected reply to query"));
  }
  if (s.decoded.has_value()) return std::move(*s.decoded);
  return decode_response(s.payload);
}

Result<service::Response> Client::query(const service::Request& req) {
  MLOC_ASSIGN_OR_RETURN(std::uint64_t id, send_query(req));
  return wait(id);
}

Status Client::cancel(std::uint64_t request_id) {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(
      send_all(encode_frame(FrameType::kCancel, id, encode_cancel(request_id))));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(id));
  if (s.type != FrameType::kAck) {
    return fail(corrupt_data("unexpected reply to cancel"));
  }
  MLOC_ASSIGN_OR_RETURN(Ack ack, decode_status(s.payload));
  return ack.carried;
}

Result<StatsSnapshot> Client::stats() {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(send_all(encode_frame(FrameType::kStats, id, {})));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(id));
  if (s.type == FrameType::kAck) {
    MLOC_ASSIGN_OR_RETURN(Ack ack, decode_status(s.payload));
    return ack.carried.is_ok() ? internal_error("stats refused without a reason")
                               : ack.carried;
  }
  if (s.type != FrameType::kStatsResult) {
    return fail(corrupt_data("unexpected reply to stats"));
  }
  return decode_stats(s.payload);
}

Result<std::vector<MlocStore::VariableDesc>> Client::list_variables() {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(
      send_all(encode_frame(FrameType::kListVariables, id, {})));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(id));
  if (s.type == FrameType::kAck) {
    MLOC_ASSIGN_OR_RETURN(Ack ack, decode_status(s.payload));
    return ack.carried.is_ok()
               ? internal_error("list_variables refused without a reason")
               : ack.carried;
  }
  if (s.type != FrameType::kVariableList) {
    return fail(corrupt_data("unexpected reply to list_variables"));
  }
  return decode_variable_list(s.payload);
}

Result<service::SessionStats> Client::session_stats() {
  const std::uint64_t id = next_id_++;
  MLOC_RETURN_IF_ERROR(
      send_all(encode_frame(FrameType::kSessionStats, id, {})));
  MLOC_ASSIGN_OR_RETURN(Stash s, wait_frame(id));
  if (s.type == FrameType::kAck) {
    MLOC_ASSIGN_OR_RETURN(Ack ack, decode_status(s.payload));
    return ack.carried.is_ok()
               ? internal_error("session_stats refused without a reason")
               : ack.carried;
  }
  if (s.type != FrameType::kSessionStatsResult) {
    return fail(corrupt_data("unexpected reply to session_stats"));
  }
  return decode_session_stats(s.payload);
}

}  // namespace mloc::net
