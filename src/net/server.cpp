#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include "net/shm.hpp"

namespace mloc::net {

namespace {

std::uint32_t raw_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t raw_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(raw_u32(p)) |
         (static_cast<std::uint64_t>(raw_u32(p + 4)) << 32);
}

}  // namespace

// A connection is pinned to one loop: its fd is only ever read, written,
// or closed by that loop's thread, and `rbuf`/`session` are loop-thread
// state. `mutex` guards the cross-thread pieces: the outbox (service
// worker callbacks append responses), the request-id map (callbacks
// erase, kCancel looks up, shutdown() harvests), and the closed flag.
struct Server::Connection {
  int fd = -1;
  Loop* loop = nullptr;
  Bytes rbuf;

  sync::Mutex mutex;
  std::deque<EncodedResponse> outbox MLOC_GUARDED_BY(mutex);
  /// bytes of outbox.front() already on the wire
  std::size_t front_sent MLOC_GUARDED_BY(mutex) = 0;
  /// EPOLLOUT currently armed
  bool want_write MLOC_GUARDED_BY(mutex) = false;
  bool closed MLOC_GUARDED_BY(mutex) = false;
  /// Loop-thread only (set by kOpenSession, consumed at close), so not
  /// capability-guarded; teardown paths also clear it under `mutex` purely
  /// for ordering with `closed`.
  service::SessionId session = 0;
  /// request_id -> QueryId for queries submitted and not yet resolved.
  /// A query still inside submit_async maps to 0 (visible to kCancel for
  /// one scheduling instant; treated as not-cancellable).
  std::unordered_map<std::uint64_t, service::QueryId> inflight
      MLOC_GUARDED_BY(mutex);
  /// Shared-memory ring, created on kShmOffer. Ring cursor state (the
  /// producer side of try_alloc/publish) is single-writer *because* every
  /// access happens under `mutex` — the same lock that already serializes
  /// this connection's outbox, so slot publication order always matches
  /// descriptor frame order.
  std::unique_ptr<ShmServerSegment> shm MLOC_GUARDED_BY(mutex)
      MLOC_PT_GUARDED_BY(mutex);
  /// True once the client confirmed its mapping (kShmAttach); only then do
  /// responses take the ring path.
  bool shm_active MLOC_GUARDED_BY(mutex) = false;
};

struct Server::Loop {
  int epfd = -1;
  int wakefd = -1;
  std::thread thread;
  std::atomic<bool> stop{false};

  sync::Mutex mutex;
  std::vector<std::shared_ptr<Connection>> incoming MLOC_GUARDED_BY(mutex);
  std::vector<std::shared_ptr<Connection>> writable MLOC_GUARDED_BY(mutex);

  /// fd -> connection; loop-thread only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
};

Server::Server(service::QueryService& svc, ServerConfig cfg)
    : svc_(svc), cfg_(std::move(cfg)) {
  if (cfg_.num_loops < 1) cfg_.num_loops = 1;
}

Server::~Server() { shutdown(); }

void Server::wake(Loop& loop) {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(loop.wakefd, &one, sizeof one);
}

Status Server::start() {
  if (started_.load()) return failed_precondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return io_error("socket: " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return invalid_argument("bad listen host: " + cfg_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status st = io_error("bind " + cfg_.host + ":" + std::to_string(cfg_.port) +
                         ": " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 512) != 0) {
    Status st = io_error("listen: " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  loops_.clear();
  for (int i = 0; i < cfg_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epfd < 0 || loop->wakefd < 0) {
      if (loop->epfd >= 0) ::close(loop->epfd);
      if (loop->wakefd >= 0) ::close(loop->wakefd);
      for (auto& l : loops_) {
        ::close(l->epfd);
        ::close(l->wakefd);
      }
      loops_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return io_error("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wakefd;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakefd, &ev);
    if (i == 0) {
      ev.data.fd = listen_fd_;
      ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    loops_.push_back(std::move(loop));
  }

  started_.store(true);
  stopped_.store(false);
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->thread = std::thread([this, l] { loop_main(*l); });
  }
  return Status::ok();
}

void Server::loop_main(Loop& loop) {
  std::array<epoll_event, 64> events;
  while (!loop.stop.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(loop.epfd, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == loop.wakefd) {
        std::uint64_t junk;
        while (::read(loop.wakefd, &junk, sizeof junk) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> incoming;
        std::vector<std::shared_ptr<Connection>> writable;
        {
          sync::MutexLock lock(loop.mutex);
          incoming.swap(loop.incoming);
          writable.swap(loop.writable);
        }
        for (auto& c : incoming) register_connection(loop, std::move(c));
        for (auto& c : writable) flush_writes(c);
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready(loop);
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(loop, conn, /*protocol_error=*/false);
        continue;
      }
      if ((ev & EPOLLIN) != 0) handle_readable(loop, conn);
      if ((ev & EPOLLOUT) != 0 && loop.conns.count(fd) != 0) flush_writes(conn);
    }
  }
  // Teardown: shutdown() has already drained in-flight queries, so no
  // callback will enqueue into these connections after this point.
  for (auto& entry : loop.conns) {
    Connection& conn = *entry.second;
    service::SessionId session = 0;
    std::unique_ptr<ShmServerSegment> shm;
    {
      sync::MutexLock lock(conn.mutex);
      conn.closed = true;
      conn.outbox.clear();
      session = std::exchange(conn.session, 0);
      conn.inflight.clear();
      shm = std::move(conn.shm);
      conn.shm_active = false;
    }
    shm.reset();
    ::close(entry.first);
    if (session != 0) (void)svc_.close_session(session);
    sync::MutexLock lock(stats_mutex_);
    ++stats_.connections_closed;
  }
  loop.conns.clear();
}

void Server::register_connection(Loop& loop, std::shared_ptr<Connection> conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
    ::close(conn->fd);
    sync::MutexLock lock(conn->mutex);
    conn->closed = true;
    return;
  }
  loop.conns.emplace(conn->fd, std::move(conn));
}

void Server::accept_ready(Loop& loop) {
  for (;;) {
    int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient accept failure; epoll will re-arm
    }
    if (draining_.load()) {
      ::close(cfd);
      continue;
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_shared<Connection>();
    conn->fd = cfd;
    Loop& target =
        *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                loops_.size()];
    conn->loop = &target;
    {
      sync::MutexLock lock(registry_mutex_);
      // Lazily compact tombstones so the registry tracks live connections,
      // not every connection ever accepted.
      if (registry_.size() >= 1024) {
        std::erase_if(registry_, [](const std::weak_ptr<Connection>& w) {
          return w.expired();
        });
      }
      registry_.push_back(conn);
    }
    {
      sync::MutexLock lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
    if (&target == &loop) {
      register_connection(loop, std::move(conn));
    } else {
      {
        sync::MutexLock lock(target.mutex);
        target.incoming.push_back(std::move(conn));
      }
      wake(target);
    }
  }
}

void Server::handle_readable(Loop& loop,
                             const std::shared_ptr<Connection>& conn) {
  std::array<std::uint8_t, 64 * 1024> buf;
  std::uint64_t received = 0;
  bool eof = false;
  bool fatal = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), buf.data(), buf.data() + n);
      received += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    fatal = true;
    break;
  }
  if (received != 0) {
    sync::MutexLock lock(stats_mutex_);
    stats_.bytes_received += received;
  }
  if (!parse_frames(conn)) {
    close_connection(loop, conn, /*protocol_error=*/true);
    return;
  }
  if (eof || fatal) close_connection(loop, conn, /*protocol_error=*/false);
}

bool Server::parse_frames(const std::shared_ptr<Connection>& conn) {
  Bytes& buf = conn->rbuf;
  std::size_t off = 0;
  bool stream_ok = true;
  std::uint64_t frames = 0;
  while (buf.size() - off >= kHeaderBytes) {
    std::span<const std::uint8_t> head(buf.data() + off, kHeaderBytes);
    auto h = decode_header(head);
    std::size_t need = 0;
    if (h.is_ok()) {
      if (h.value().payload_len > cfg_.max_payload_bytes) {
        stream_ok = false;
        break;
      }
      need = kHeaderBytes + h.value().payload_len;
      if (buf.size() - off < need) break;
      std::span<const std::uint8_t> payload(buf.data() + off + kHeaderBytes,
                                            h.value().payload_len);
      if (!verify_payload(h.value(), payload).is_ok()) {
        stream_ok = false;
        break;
      }
      ++frames;
      handle_frame(conn, h.value(), payload);
    } else if (h.status().code() == ErrorCode::kUnsupported &&
               (static_cast<std::uint16_t>(head[4]) |
                static_cast<std::uint16_t>(head[5] << 8)) ==
                   kProtocolVersion) {
      // Same protocol version but an unknown frame type: the header CRC
      // already validated (decode_header orders CRC before the type
      // check), so payload_len is trustworthy. Skip the frame and answer
      // Unsupported — the connection stays in sync, per the versioning
      // rules in wire.hpp.
      const std::uint32_t plen = raw_u32(head.data() + 16);
      if (plen > cfg_.max_payload_bytes) {
        stream_ok = false;
        break;
      }
      need = kHeaderBytes + plen;
      if (buf.size() - off < need) break;
      const std::uint64_t request_id = raw_u64(head.data() + 8);
      {
        sync::MutexLock lock(stats_mutex_);
        ++stats_.payload_errors;
      }
      send_frame(conn, encode_frame(
                           FrameType::kAck, request_id,
                           encode_status(unsupported("unknown frame type"))));
    } else {
      stream_ok = false;
      break;
    }
    off += need;
  }
  if (off > 0) {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  if (frames != 0) {
    sync::MutexLock lock(stats_mutex_);
    stats_.frames_received += frames;
  }
  return stream_ok;
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const FrameHeader& h,
                          std::span<const std::uint8_t> payload) {
  auto ack = [&](std::uint64_t request_id, const Status& st) {
    send_frame(conn,
               encode_frame(FrameType::kAck, request_id, encode_status(st)));
  };
  auto payload_error = [&](std::uint64_t request_id, const Status& st) {
    {
      sync::MutexLock lock(stats_mutex_);
      ++stats_.payload_errors;
    }
    ack(request_id, st);
  };

  switch (h.type) {
    case FrameType::kPing:
      send_frame(conn, encode_frame(FrameType::kPong, h.request_id, {}));
      return;

    case FrameType::kOpenSession: {
      auto label = decode_open_session(payload);
      if (!label.is_ok()) return payload_error(h.request_id, label.status());
      if (conn->session != 0) {
        return ack(h.request_id,
                   failed_precondition("connection already has a session"));
      }
      auto sid = svc_.open_session(std::move(label.value()));
      if (!sid.is_ok()) return ack(h.request_id, sid.status());
      conn->session = sid.value();
      send_frame(conn, encode_frame(FrameType::kSessionOpened, h.request_id,
                                    encode_session_opened(sid.value())));
      return;
    }

    case FrameType::kCloseSession: {
      if (conn->session == 0) {
        return ack(h.request_id,
                   failed_precondition("no session open on this connection"));
      }
      Status st = svc_.close_session(std::exchange(conn->session, 0));
      return ack(h.request_id, st);
    }

    case FrameType::kQuery:
      handle_query(conn, h.request_id, payload);
      return;

    case FrameType::kCancel: {
      auto target = decode_cancel(payload);
      if (!target.is_ok()) return payload_error(h.request_id, target.status());
      service::QueryId qid = 0;
      {
        sync::MutexLock lock(conn->mutex);
        auto it = conn->inflight.find(target.value());
        if (it != conn->inflight.end()) qid = it->second;
      }
      Status st = qid != 0
                      ? svc_.cancel(qid)
                      : not_found("request not in flight (unknown id, or "
                                  "already completed)");
      return ack(h.request_id, st);
    }

    case FrameType::kStats: {
      StatsSnapshot snap{svc_.aggregate(), svc_.cache_stats()};
      send_frame(conn, encode_frame(FrameType::kStatsResult, h.request_id,
                                    encode_stats(snap)));
      return;
    }

    case FrameType::kListVariables: {
      send_frame(conn,
                 encode_frame(FrameType::kVariableList, h.request_id,
                              encode_variable_list(svc_.store().describe_all())));
      return;
    }

    case FrameType::kShmOffer: {
      auto ring = decode_shm_offer(payload);
      if (!ring.is_ok()) return payload_error(h.request_id, ring.status());
      if (!cfg_.enable_shm) {
        return ack(h.request_id,
                   unsupported("shm transport disabled on this server"));
      }
      bool already = false;
      {
        sync::MutexLock lock(conn->mutex);
        already = conn->shm != nullptr;
      }
      if (already) {
        return ack(h.request_id,
                   failed_precondition("connection already negotiated shm"));
      }
      const std::uint64_t ring_bytes = std::clamp(
          ring.value(), kShmMinRingBytes, cfg_.max_shm_ring_bytes);
      auto seg = ShmServerSegment::create(ring_bytes);
      // Creation failure (tmpfs full, mmap refused) is a per-connection
      // refusal, not an error: the client stays on TCP.
      if (!seg.is_ok()) return ack(h.request_id, seg.status());
      Bytes accept = encode_frame(FrameType::kShmAccept, h.request_id,
                                  encode_shm_accept(seg.value()->info()));
      {
        sync::MutexLock lock(conn->mutex);
        conn->shm = std::move(seg).value();
      }
      {
        sync::MutexLock lock(stats_mutex_);
        ++stats_.shm_segments;
      }
      send_frame(conn, std::move(accept));
      return;
    }

    case FrameType::kShmAttach: {
      auto mapped = decode_shm_attach(payload);
      if (!mapped.is_ok()) return payload_error(h.request_id, mapped.status());
      std::unique_ptr<ShmServerSegment> discarded;
      Status st;
      bool attached = false;
      {
        sync::MutexLock lock(conn->mutex);
        if (conn->shm == nullptr) {
          st = failed_precondition("no shm segment offered on this connection");
        } else if (conn->shm_active) {
          st = failed_precondition("shm segment already attached");
        } else if (mapped.value()) {
          // Both sides hold mappings now; the name has served its purpose.
          // From here the segment lives exactly as long as the mappings.
          conn->shm->unlink();
          conn->shm_active = true;
          attached = true;
        } else {
          // Client could not map or validate the segment: tear it down
          // (unmap + unlink) and stay on TCP.
          discarded = std::move(conn->shm);
        }
      }
      if (attached) {
        sync::MutexLock lock(stats_mutex_);
        ++stats_.shm_attached;
      }
      return ack(h.request_id, st);
    }

    case FrameType::kSessionStats: {
      if (conn->session == 0) {
        return ack(h.request_id,
                   failed_precondition("no session open on this connection"));
      }
      auto st = svc_.session_stats(conn->session);
      if (!st.is_ok()) return ack(h.request_id, st.status());
      send_frame(conn, encode_frame(FrameType::kSessionStatsResult,
                                    h.request_id, encode_session_stats(st.value())));
      return;
    }

    default:
      // A known type that is not a client->server frame (kQueryResult
      // etc. arriving at the server). The stream is still framed
      // correctly, so answer and carry on.
      return payload_error(
          h.request_id,
          invalid_argument("frame type not valid in this direction"));
  }
}

void Server::handle_query(const std::shared_ptr<Connection>& conn,
                          std::uint64_t request_id,
                          std::span<const std::uint8_t> payload) {
  auto error_response = [&](Status st) {
    service::Response resp;
    resp.status = std::move(st);
    send_response(conn, encode_response_frame(request_id, std::move(resp)));
  };

  auto req = decode_request(payload);
  if (!req.is_ok()) {
    {
      sync::MutexLock lock(stats_mutex_);
      ++stats_.payload_errors;
    }
    return error_response(req.status());
  }
  if (draining_.load()) {
    {
      sync::MutexLock lock(stats_mutex_);
      ++stats_.rejected_draining;
    }
    return error_response(failed_precondition("server draining"));
  }
  if (conn->session == 0) {
    return error_response(
        failed_precondition("no session open on this connection"));
  }

  bool duplicate = false;
  {
    sync::MutexLock lock(conn->mutex);
    if (conn->closed) return;
    // Reserve the id before submitting: the map entry holds 0 until
    // submit_async returns the QueryId (kCancel treats 0 as
    // not-yet-cancellable), and the completion callback erases it.
    duplicate = !conn->inflight.emplace(request_id, 0).second;
  }
  if (duplicate) {
    // Duplicate ids would make responses ambiguous; refuse.
    return error_response(
        invalid_argument("request id already in flight on this connection"));
  }

  inflight_.fetch_add(1, std::memory_order_acq_rel);
  std::weak_ptr<Connection> wc = conn;
  const service::QueryId qid = svc_.submit_async(
      conn->session, std::move(req.value()),
      [this, wc, request_id](service::Response resp) {
        auto c = wc.lock();
        bool enqueued = false;
        bool via_shm = false;
        bool fell_back = false;
        std::uint64_t payload_bytes = 0;
        if (c) {
          // Shm fast path first. The ring allocate-write-publish must be
          // one critical section per connection (see Connection::shm), and
          // it is the fold-into-slot hook: the payload is serialized from
          // the engine's buffers straight into the ring, so the TCP path's
          // payload CRC pass and two socket copies never happen.
          {
            sync::MutexLock lock(c->mutex);
            c->inflight.erase(request_id);
            if (!c->closed && c->shm_active && c->shm != nullptr) {
              resp.stats.via_shm = true;
              const Bytes prefix = encode_response_prefix(resp);
              const std::uint64_t pos_bytes =
                  resp.result.positions.size() * sizeof(std::uint64_t);
              const std::uint64_t val_bytes =
                  resp.result.values.size() * sizeof(double);
              const std::uint64_t total = prefix.size() + pos_bytes + val_bytes;
              if (auto slot = c->shm->try_alloc(total)) {
                std::uint8_t* out = slot->data;
                std::memcpy(out, prefix.data(), prefix.size());
                out += prefix.size();
                if (pos_bytes != 0) {
                  std::memcpy(out, resp.result.positions.data(), pos_bytes);
                  out += pos_bytes;
                }
                if (val_bytes != 0) {
                  std::memcpy(out, resp.result.values.data(), val_bytes);
                }
                c->shm->publish(*slot);
                ShmDescriptor d;
                d.offset = slot->offset;
                d.len = slot->len;
                d.release = slot->release;
                c->outbox.push_back(
                    EncodedResponse{encode_frame(FrameType::kShmResult,
                                                 request_id,
                                                 encode_shm_result(d)),
                                    {},
                                    {}});
                enqueued = via_shm = true;
                payload_bytes = total;
              } else {
                fell_back = true;  // ring full or oversize: frame it below
              }
            }
          }
          if (!enqueued) {
            resp.stats.via_shm = false;
            auto er = encode_response_frame(request_id, std::move(resp));
            payload_bytes = er.total_bytes() - kHeaderBytes;
            sync::MutexLock lock(c->mutex);
            if (!c->closed) {
              c->outbox.push_back(std::move(er));
              enqueued = true;
            }
          }
          if (enqueued) notify_writable(c);
        }
        if (enqueued) {
          svc_.record_transport(via_shm, payload_bytes);
          sync::MutexLock lock(stats_mutex_);
          via_shm ? ++stats_.responses_shm : ++stats_.responses_tcp;
          if (fell_back) ++stats_.shm_fallbacks;
        } else {
          sync::MutexLock lock(stats_mutex_);
          ++stats_.responses_dropped;
        }
        finish_inflight();
      });
  if (qid != 0) {
    sync::MutexLock lock(conn->mutex);
    auto it = conn->inflight.find(request_id);
    // Entry gone means the callback already resolved the query.
    if (it != conn->inflight.end() && it->second == 0) it->second = qid;
  }
}

void Server::send_frame(const std::shared_ptr<Connection>& conn, Bytes frame) {
  {
    sync::MutexLock lock(conn->mutex);
    if (conn->closed) return;
    conn->outbox.push_back(EncodedResponse{std::move(frame), {}, {}});
  }
  flush_writes(conn);
}

void Server::send_response(const std::shared_ptr<Connection>& conn,
                           EncodedResponse er) {
  {
    sync::MutexLock lock(conn->mutex);
    if (conn->closed) return;
    conn->outbox.push_back(std::move(er));
  }
  flush_writes(conn);
}

void Server::flush_writes(const std::shared_ptr<Connection>& conn) {
  std::uint64_t sent_bytes = 0;
  std::uint64_t sent_frames = 0;
  bool fatal = false;
  {
    sync::MutexLock lock(conn->mutex);
    if (conn->closed) return;
    while (!conn->outbox.empty()) {
      EncodedResponse& f = conn->outbox.front();
      std::array<iovec, 3> iov;
      int niov = 0;
      std::size_t skip = conn->front_sent;
      auto add = [&](const void* base, std::size_t len) {
        if (len == 0) return;
        if (skip >= len) {
          skip -= len;
          return;
        }
        iov[static_cast<std::size_t>(niov)].iov_base = const_cast<char*>(
            static_cast<const char*>(base) + skip);
        iov[static_cast<std::size_t>(niov)].iov_len = len - skip;
        skip = 0;
        ++niov;
      };
      add(f.head.data(), f.head.size());
      add(f.positions.data(), f.positions.size() * sizeof(std::uint64_t));
      add(f.values.data(), f.values.size() * sizeof(double));
      if (niov == 0) {
        conn->outbox.pop_front();
        conn->front_sent = 0;
        ++sent_frames;
        continue;
      }
      msghdr msg{};
      msg.msg_iov = iov.data();
      msg.msg_iovlen = static_cast<std::size_t>(niov);
      ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) fatal = true;
        break;
      }
      conn->front_sent += static_cast<std::size_t>(n);
      sent_bytes += static_cast<std::uint64_t>(n);
      if (conn->front_sent >= f.total_bytes()) {
        conn->outbox.pop_front();
        conn->front_sent = 0;
        ++sent_frames;
      }
    }
    const bool need_write = !conn->outbox.empty() && !fatal;
    if (need_write != conn->want_write) {
      conn->want_write = need_write;
      epoll_event ev{};
      ev.events = EPOLLIN | (need_write ? EPOLLOUT : 0u);
      ev.data.fd = conn->fd;
      ::epoll_ctl(conn->loop->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
    }
  }
  if (sent_bytes != 0 || sent_frames != 0) {
    sync::MutexLock lock(stats_mutex_);
    stats_.bytes_sent += sent_bytes;
    stats_.frames_sent += sent_frames;
  }
  if (fatal) {
    close_connection(*conn->loop, conn, /*protocol_error=*/false);
  }
}

void Server::close_connection(Loop& loop,
                              const std::shared_ptr<Connection>& conn,
                              bool protocol_error) {
  service::SessionId session = 0;
  // Reclaims the shm segment outside the lock: unmapping drops the
  // server's reference, and since the name was unlinked at attach, a
  // crashed client's pages are freed by the kernel the moment its own
  // mapping dies — no per-slot bookkeeping to repair.
  std::unique_ptr<ShmServerSegment> shm;
  {
    sync::MutexLock lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
    conn->outbox.clear();
    conn->front_sent = 0;
    session = std::exchange(conn->session, 0);
    conn->inflight.clear();
    shm = std::move(conn->shm);
    conn->shm_active = false;
  }
  ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  loop.conns.erase(conn->fd);
  if (session != 0) (void)svc_.close_session(session);
  {
    sync::MutexLock lock(stats_mutex_);
    ++stats_.connections_closed;
    if (protocol_error) ++stats_.protocol_errors;
  }
}

void Server::notify_writable(const std::shared_ptr<Connection>& conn) {
  Loop& loop = *conn->loop;
  {
    sync::MutexLock lock(loop.mutex);
    loop.writable.push_back(conn);
  }
  wake(loop);
}

void Server::finish_inflight() {
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    sync::MutexLock lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void Server::shutdown(double grace_s) {
  sync::MutexLock shutdown_lock(shutdown_mutex_);
  if (!started_.load() || stopped_.load()) return;
  if (grace_s < 0) grace_s = cfg_.drain_grace_s;
  draining_.store(true);

  // Phase 1: wait up to the grace period for in-flight queries to resolve
  // on their own (new queries are already being refused).
  {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(grace_s));
    sync::MutexLock lock(drain_mutex_);
    while (inflight_.load() != 0) {
      if (drain_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }

  // Phase 2: grace expired — cancel whatever is still queued. Executing
  // queries cannot be interrupted, but they are bounded by one query's
  // runtime, so the follow-up wait terminates.
  if (inflight_.load() != 0) {
    std::vector<service::QueryId> qids;
    {
      sync::MutexLock lock(registry_mutex_);
      for (auto& weak : registry_) {
        auto conn = weak.lock();
        if (!conn) continue;
        sync::MutexLock conn_lock(conn->mutex);
        for (auto& entry : conn->inflight) {
          if (entry.second != 0) qids.push_back(entry.second);
        }
      }
    }
    for (service::QueryId qid : qids) (void)svc_.cancel(qid);
    sync::MutexLock lock(drain_mutex_);
    while (inflight_.load() != 0) drain_cv_.wait(lock);
  }

  // Phase 3: give the loops a moment to flush queued responses to clients
  // that are still reading, so a graceful stop delivers what it promised.
  const auto flush_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  for (;;) {
    bool all_empty = true;
    {
      sync::MutexLock lock(registry_mutex_);
      for (auto& weak : registry_) {
        auto conn = weak.lock();
        if (!conn) continue;
        sync::MutexLock conn_lock(conn->mutex);
        if (!conn->closed && !conn->outbox.empty()) {
          all_empty = false;
          break;
        }
      }
    }
    if (all_empty || std::chrono::steady_clock::now() >= flush_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Phase 4: stop the loops; their teardown closes sockets and sessions.
  for (auto& loop : loops_) {
    loop->stop.store(true, std::memory_order_release);
    wake(*loop);
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) {
    ::close(loop->wakefd);
    ::close(loop->epfd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_.store(true);
}

ServerStats Server::stats() const {
  sync::MutexLock lock(stats_mutex_);
  return stats_;
}

}  // namespace mloc::net
