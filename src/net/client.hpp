// Client side of the wire protocol (src/net/wire.hpp): a blocking TCP
// connection to a Server, with pipelining.
//
// The client is single-threaded by design — one connection, one caller.
// Pipelining works by splitting submission from collection: send_query()
// writes the frame and returns immediately with the request id; wait()
// blocks until that id's response arrives, stashing any other responses
// that land first (the server answers out of order, as queries finish).
// A load generator drives hundreds of in-flight queries per connection
// this way without any client-side threads.
//
// Transport/protocol failures (socket error, corrupt frame, unexpected
// type) surface as the Result's error Status and poison the connection
// (every later call fails until close()/connect()). Server-side outcomes
// — a rejected query, a cancelled query, a closed session — arrive as a
// normal Response whose `status` carries the error; the connection stays
// usable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/shm.hpp"
#include "net/wire.hpp"
#include "service/query_service.hpp"
#include "util/status.hpp"

namespace mloc::net {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Round-trip a kPing frame.
  Status ping();

  /// Open this connection's session (at most one per connection).
  Result<service::SessionId> open_session(std::string_view label = "");
  Status close_session();

  /// Negotiate the shared-memory fast path (kShmOffer/kShmAccept): the
  /// server creates a per-connection ring of `ring_bytes` (it may clamp)
  /// and later query responses arrive through it — transparently, behind
  /// the same query()/wait() API. A server refusal or a local mapping
  /// failure returns its Status and leaves the connection fully usable
  /// over TCP; only protocol corruption poisons the connection.
  Status enable_shm(std::uint64_t ring_bytes = 4ull << 20);
  /// True when responses are arriving through a shared-memory ring.
  [[nodiscard]] bool shm_active() const noexcept { return shm_ != nullptr; }

  /// Blocking query: submit and wait for its response.
  Result<service::Response> query(const service::Request& req);

  /// Pipelined submission: write the frame, return its request id without
  /// waiting. Collect with wait() in any order.
  Result<std::uint64_t> send_query(const service::Request& req);
  Result<service::Response> wait(std::uint64_t request_id);

  /// Ask the server to cancel an in-flight query by its request id. The
  /// returned Status is the server's answer (ok = cancelled; NotFound =
  /// already completed or never seen). A cancelled query still gets a
  /// response — collect it with wait().
  Status cancel(std::uint64_t request_id);

  Result<StatsSnapshot> stats();
  Result<service::SessionStats> session_stats();
  /// The served store's per-variable inventory (name, layout, epoch) —
  /// the remote view of MlocStore::describe_all.
  Result<std::vector<MlocStore::VariableDesc>> list_variables();

 private:
  struct Stash {
    FrameType type = FrameType::kPong;
    Bytes payload;
    /// Set for responses that arrived through the shm ring: kShmResult
    /// frames are decoded straight out of the ring at parse time (so the
    /// bytes can be released immediately, in descriptor order) and stash
    /// the finished Response instead of payload bytes.
    std::optional<service::Response> decoded;
  };

  Status send_all(const Bytes& frame);
  /// Read frames until `request_id`'s arrives; stash the rest.
  Result<Stash> wait_frame(std::uint64_t request_id);
  Status fail(Status st);  ///< poison the connection, pass `st` through

  int fd_ = -1;
  Status broken_;  ///< first transport error; non-ok poisons the client
  std::uint64_t next_id_ = 1;
  Bytes rbuf_;
  std::unordered_map<std::uint64_t, Stash> stashed_;
  std::unique_ptr<ShmClientSegment> shm_;  ///< non-null once negotiated
};

}  // namespace mloc::net
