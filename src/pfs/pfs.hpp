// Parallel-file-system emulator.
//
// The paper evaluates on Lustre (ORNL Lens); this reproduction has no
// physical PFS, so pfs:: provides the two things MLOC actually consumes:
//
//  1. PfsStorage — a named-file byte store (subfiling target). Files hold
//     real bytes in memory, so reads are bit-exact; what is *modeled* is
//     time, not content.
//  2. A virtual-clock cost model. Every read is logged as an extent
//     (file, offset, length, rank). model_makespan() converts a log into
//     seconds using a Lustre-like model:
//       - per merged contiguous extent: one seek (seek_latency_s);
//       - transfer at ost_bandwidth_bps multiplied by the number of
//         distinct OSTs the extent's stripes touch (striped parallelism);
//       - per distinct (rank, file): one metadata open;
//       - cross-rank contention: every OST is a shared resource, so the
//         makespan is max(slowest rank's dedicated time, busiest OST's
//         aggregate service time). The second term is what stops I/O
//         scaling at high rank counts (paper Fig. 7).
//
// Stripe placement: stripe s of file f lives on OST (f + s) mod num_osts —
// the round-robin layout Lustre uses, with the file-id shift spreading
// first stripes across OSTs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace mloc::pfs {

using FileId = std::uint32_t;

struct PfsConfig {
  int num_osts = 8;
  std::uint64_t stripe_size = 1 << 20;    ///< 1 MiB, the Lustre default
  double seek_latency_s = 5e-3;           ///< per discontiguous extent
  double ost_bandwidth_bps = 300e6;       ///< per-OST streaming rate
  double open_latency_s = 1e-3;           ///< metadata cost per file open
};

/// One logical read: `len` bytes at `offset` of `file` issued by `rank`.
struct IoRecord {
  FileId file = 0;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::uint32_t rank = 0;
};

/// One entry of a vectorized read (see PfsStorage::read_batch).
struct ReadRequest {
  FileId file = 0;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
};

/// Per-access-pattern I/O log consumed by the cost model.
class IoLog {
 public:
  void add(FileId file, std::uint64_t offset, std::uint64_t len,
           std::uint32_t rank = 0) {
    records_.push_back({file, offset, len, rank});
  }
  void clear() noexcept { records_.clear(); }
  [[nodiscard]] const std::vector<IoRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t b = 0;
    for (const auto& r : records_) b += r.len;
    return b;
  }
  void merge_from(const IoLog& other) {
    records_.insert(records_.end(), other.records_.begin(),
                    other.records_.end());
  }

 private:
  std::vector<IoRecord> records_;
};

/// Merge records (all assumed issued by one rank) into maximal contiguous
/// per-file extents, sorted by (file, offset) — the exact merge the cost
/// model applies before charging seeks. Exposed so the execution engine and
/// the planner count modeled seeks with the same rule the model uses.
std::vector<IoRecord> coalesce_extents(std::vector<IoRecord> records);

/// Number of seek-charged extents in `log`: records are partitioned by
/// rank tag and coalesced per rank, mirroring model_makespan's accounting.
std::uint64_t coalesced_extent_count(const IoLog& log);

/// Modeled wall-clock seconds for the logged accesses executed by
/// `num_ranks` concurrent processes.
double model_makespan(const PfsConfig& cfg, const IoLog& log, int num_ranks);

/// Diagnostic breakdown of the model's two bounds (exposed for tests and
/// the scalability bench).
struct MakespanDetail {
  double slowest_rank_s = 0.0;  ///< critical path of the busiest rank
  double busiest_ost_s = 0.0;   ///< aggregate service time of the hottest OST
  [[nodiscard]] double makespan() const noexcept {
    return slowest_rank_s > busiest_ost_s ? slowest_rank_s : busiest_ost_s;
  }
};
MakespanDetail model_makespan_detail(const PfsConfig& cfg, const IoLog& log,
                                     int num_ranks);

/// In-memory named-file store with byte-exact contents.
///
/// Thread-safety: reads (open/read/read_batch/file_size/total_bytes/
/// listing) take a shared lock and writes (create/append/set_contents) an
/// exclusive one, so concurrent queries are wait-free against each other
/// and safe against a concurrent ingest creating or rewriting files. Each
/// call is individually atomic — a read issued during set_contents sees
/// either the old or the new bytes, never a mix. Moving a PfsStorage while
/// any other thread uses it is undefined (moves happen only at setup).
class PfsStorage {
 public:
  explicit PfsStorage(PfsConfig cfg = {}) : cfg_(cfg) {}

  PfsStorage(PfsStorage&& other) noexcept
      : cfg_(other.cfg_),
        files_(std::move(other.files_)),
        names_(std::move(other.names_)),
        by_name_(std::move(other.by_name_)) {}
  PfsStorage& operator=(PfsStorage&& other) noexcept {
    if (this != &other) {
      // Moves happen only at setup (documented above); the locks exist so
      // the transfer is visibly well-ordered to the capability analysis.
      sync::WriterLock self_lock(mu_);
      sync::WriterLock other_lock(other.mu_);
      cfg_ = other.cfg_;
      files_ = std::move(other.files_);
      names_ = std::move(other.names_);
      by_name_ = std::move(other.by_name_);
    }
    return *this;
  }

  [[nodiscard]] const PfsConfig& config() const noexcept { return cfg_; }

  /// Create an empty file. Fails if the name exists.
  [[nodiscard]] Result<FileId> create(const std::string& name)
      MLOC_EXCLUDES(mu_);

  /// Look up an existing file.
  [[nodiscard]] Result<FileId> open(const std::string& name) const
      MLOC_EXCLUDES(mu_);

  /// Append bytes to a file (MLOC writes subfiles sequentially).
  [[nodiscard]] Status append(FileId file, std::span<const std::uint8_t> bytes)
      MLOC_EXCLUDES(mu_);

  /// Replace a file's contents (store-metadata rewrites).
  [[nodiscard]] Status set_contents(FileId file, Bytes bytes)
      MLOC_EXCLUDES(mu_);

  /// Read `len` bytes at `offset`; logs the access into `log` when given.
  [[nodiscard]] Result<Bytes> read(FileId file, std::uint64_t offset,
                                   std::uint64_t len, IoLog* log = nullptr,
                                   std::uint32_t rank = 0) const
      MLOC_EXCLUDES(mu_);

  /// Vectorized read: one buffer per request, in request order. All
  /// requests are validated before any byte moves or any record is logged,
  /// so a bad request fails the whole batch atomically. Each request logs
  /// one IoRecord (when len > 0) — callers coalesce adjacent extents
  /// *before* batching, making one merged extent cost one modeled seek.
  [[nodiscard]] Result<std::vector<Bytes>> read_batch(
      std::span<const ReadRequest> requests, IoLog* log = nullptr,
      std::uint32_t rank = 0) const MLOC_EXCLUDES(mu_);

  [[nodiscard]] Result<std::uint64_t> file_size(FileId file) const
      MLOC_EXCLUDES(mu_);

  /// Total bytes across all files (Table I storage accounting).
  [[nodiscard]] std::uint64_t total_bytes() const MLOC_EXCLUDES(mu_);

  [[nodiscard]] std::size_t num_files() const MLOC_EXCLUDES(mu_);

  /// Names and sizes of all files, creation order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> listing()
      const MLOC_EXCLUDES(mu_);

  /// Persist every file under `dir` on the host filesystem ('/' in file
  /// names becomes a subdirectory). Overwrites existing files.
  [[nodiscard]] Status save_to_dir(const std::string& dir) const
      MLOC_EXCLUDES(mu_);

  /// Load a directory previously written by save_to_dir into a fresh
  /// storage (recursively; file names are paths relative to `dir`).
  [[nodiscard]] static Result<PfsStorage> load_from_dir(const std::string& dir,
                                          PfsConfig cfg = {});

 private:
  PfsConfig cfg_;
  /// Reader/writer gate over the three containers below. The handle keeps
  /// the mutex storage stable so the storage stays movable; the move
  /// operations above never share one gate between two live storages.
  sync::SharedMutexHandle mu_;
  std::vector<Bytes> files_ MLOC_GUARDED_BY(mu_);
  std::vector<std::string> names_ MLOC_GUARDED_BY(mu_);
  std::map<std::string, FileId> by_name_ MLOC_GUARDED_BY(mu_);
};

}  // namespace mloc::pfs
