#include "pfs/pfs.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/assert.hpp"

namespace mloc::pfs {

/// Merge a rank's records into maximal contiguous per-file extents
/// (adjacent or overlapping reads cost one seek, like readahead would).
std::vector<IoRecord> coalesce_extents(std::vector<IoRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const IoRecord& a, const IoRecord& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.offset < b.offset;
            });
  std::vector<IoRecord> merged;
  for (const auto& r : records) {
    if (r.len == 0) continue;
    if (!merged.empty() && merged.back().file == r.file &&
        merged.back().offset + merged.back().len >= r.offset) {
      const std::uint64_t end =
          std::max(merged.back().offset + merged.back().len, r.offset + r.len);
      merged.back().len = end - merged.back().offset;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

std::uint64_t coalesced_extent_count(const IoLog& log) {
  std::map<std::uint32_t, std::vector<IoRecord>> by_rank;
  for (const auto& r : log.records()) by_rank[r.rank].push_back(r);
  std::uint64_t n = 0;
  for (auto& [rank, records] : by_rank) {
    n += coalesce_extents(std::move(records)).size();
  }
  return n;
}

namespace {

/// OSTs touched by an extent, given round-robin striping.
int stripes_spanned(const PfsConfig& cfg, const IoRecord& extent) {
  const std::uint64_t first = extent.offset / cfg.stripe_size;
  const std::uint64_t last = (extent.offset + extent.len - 1) / cfg.stripe_size;
  const std::uint64_t spans = last - first + 1;
  return static_cast<int>(
      std::min<std::uint64_t>(spans, static_cast<std::uint64_t>(cfg.num_osts)));
}

int ost_of(const PfsConfig& cfg, FileId file, std::uint64_t stripe) {
  return static_cast<int>((static_cast<std::uint64_t>(file) + stripe) %
                          static_cast<std::uint64_t>(cfg.num_osts));
}

}  // namespace

MakespanDetail model_makespan_detail(const PfsConfig& cfg, const IoLog& log,
                                     int num_ranks) {
  MLOC_CHECK(num_ranks >= 1);
  MLOC_CHECK(cfg.num_osts >= 1 && cfg.stripe_size > 0);
  MLOC_CHECK(cfg.ost_bandwidth_bps > 0);

  // Partition records by rank.
  std::vector<std::vector<IoRecord>> by_rank(num_ranks);
  for (const auto& r : log.records()) {
    MLOC_CHECK(static_cast<int>(r.rank) < num_ranks);
    by_rank[r.rank].push_back(r);
  }

  MakespanDetail out;
  std::vector<double> ost_busy(cfg.num_osts, 0.0);

  for (int rank = 0; rank < num_ranks; ++rank) {
    const auto extents = coalesce_extents(std::move(by_rank[rank]));
    // Metadata opens: one per distinct file this rank touches.
    std::set<FileId> files;
    double rank_time = 0.0;
    for (const auto& e : extents) {
      files.insert(e.file);
      const int width = stripes_spanned(cfg, e);
      const double transfer =
          static_cast<double>(e.len) / (cfg.ost_bandwidth_bps * width);
      rank_time += cfg.seek_latency_s + transfer;

      // Charge each touched OST its proportional share of bytes + one seek.
      const std::uint64_t first = e.offset / cfg.stripe_size;
      const std::uint64_t last = (e.offset + e.len - 1) / cfg.stripe_size;
      for (std::uint64_t s = first; s <= last; ++s) {
        const std::uint64_t lo = std::max(e.offset, s * cfg.stripe_size);
        const std::uint64_t hi =
            std::min(e.offset + e.len, (s + 1) * cfg.stripe_size);
        const int ost = ost_of(cfg, e.file, s);
        ost_busy[ost] += static_cast<double>(hi - lo) / cfg.ost_bandwidth_bps;
      }
      // The seek is paid once on the OST owning the first stripe.
      ost_busy[ost_of(cfg, e.file, first)] += cfg.seek_latency_s;
    }
    rank_time += static_cast<double>(files.size()) * cfg.open_latency_s;
    out.slowest_rank_s = std::max(out.slowest_rank_s, rank_time);
  }
  for (double t : ost_busy) out.busiest_ost_s = std::max(out.busiest_ost_s, t);
  return out;
}

double model_makespan(const PfsConfig& cfg, const IoLog& log, int num_ranks) {
  return model_makespan_detail(cfg, log, num_ranks).makespan();
}

Result<FileId> PfsStorage::create(const std::string& name) {
  sync::WriterLock lock(mu_);
  if (by_name_.contains(name)) {
    return invalid_argument("pfs: file exists: " + name);
  }
  const auto id = static_cast<FileId>(files_.size());
  files_.emplace_back();
  names_.push_back(name);
  by_name_[name] = id;
  return id;
}

Result<FileId> PfsStorage::open(const std::string& name) const {
  sync::ReaderLock lock(mu_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return not_found("pfs: no such file: " + name);
  return it->second;
}

Status PfsStorage::append(FileId file, std::span<const std::uint8_t> bytes) {
  sync::WriterLock lock(mu_);
  if (file >= files_.size()) return not_found("pfs: bad file id");
  files_[file].insert(files_[file].end(), bytes.begin(), bytes.end());
  return Status::ok();
}

Status PfsStorage::set_contents(FileId file, Bytes bytes) {
  sync::WriterLock lock(mu_);
  if (file >= files_.size()) return not_found("pfs: bad file id");
  files_[file] = std::move(bytes);
  return Status::ok();
}

Result<Bytes> PfsStorage::read(FileId file, std::uint64_t offset,
                               std::uint64_t len, IoLog* log,
                               std::uint32_t rank) const {
  sync::ReaderLock lock(mu_);
  if (file >= files_.size()) return not_found("pfs: bad file id");
  const Bytes& data = files_[file];
  if (offset + len > data.size() || offset + len < offset) {
    return out_of_range("pfs: read past end of " + names_[file]);
  }
  if (log != nullptr && len > 0) log->add(file, offset, len, rank);
  return Bytes(data.begin() + static_cast<std::ptrdiff_t>(offset),
               data.begin() + static_cast<std::ptrdiff_t>(offset + len));
}

Result<std::vector<Bytes>> PfsStorage::read_batch(
    std::span<const ReadRequest> requests, IoLog* log,
    std::uint32_t rank) const {
  sync::ReaderLock lock(mu_);
  for (const auto& r : requests) {
    if (r.file >= files_.size()) return not_found("pfs: bad file id");
    const Bytes& data = files_[r.file];
    if (r.offset + r.len > data.size() || r.offset + r.len < r.offset) {
      return out_of_range("pfs: read past end of " + names_[r.file]);
    }
  }
  std::vector<Bytes> out;
  out.reserve(requests.size());
  for (const auto& r : requests) {
    const Bytes& data = files_[r.file];
    if (log != nullptr && r.len > 0) log->add(r.file, r.offset, r.len, rank);
    out.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(r.offset),
                     data.begin() + static_cast<std::ptrdiff_t>(r.offset + r.len));
  }
  return out;
}

Result<std::uint64_t> PfsStorage::file_size(FileId file) const {
  sync::ReaderLock lock(mu_);
  if (file >= files_.size()) return not_found("pfs: bad file id");
  return static_cast<std::uint64_t>(files_[file].size());
}

std::uint64_t PfsStorage::total_bytes() const {
  sync::ReaderLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& f : files_) total += f.size();
  return total;
}

std::size_t PfsStorage::num_files() const {
  sync::ReaderLock lock(mu_);
  return files_.size();
}

std::vector<std::pair<std::string, std::uint64_t>> PfsStorage::listing()
    const {
  sync::ReaderLock lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i) {
    out.emplace_back(names_[i], files_[i].size());
  }
  return out;
}

Status PfsStorage::save_to_dir(const std::string& dir) const {
  sync::ReaderLock lock(mu_);
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return io_error("pfs: cannot create " + dir + ": " + ec.message());
  for (std::size_t i = 0; i < files_.size(); ++i) {
    const fs::path path = fs::path(dir) / names_[i];
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
      return io_error("pfs: cannot create " + path.parent_path().string());
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return io_error("pfs: cannot open " + path.string());
    if (!files_[i].empty()) {
      out.write(reinterpret_cast<const char*>(files_[i].data()),
                static_cast<std::streamsize>(files_[i].size()));
    }
    out.flush();
    if (!out) return io_error("pfs: short write to " + path.string());
    // A stream can report good until close flushes the last buffer; close
    // explicitly and re-check so a full disk surfaces as IoError here, not
    // as silent truncation discovered at load time.
    out.close();
    if (out.fail()) return io_error("pfs: close failed for " + path.string());
  }
  return Status::ok();
}

Result<PfsStorage> PfsStorage::load_from_dir(const std::string& dir,
                                             PfsConfig cfg) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return not_found("pfs: no such directory: " + dir);
  }
  PfsStorage storage(cfg);
  // Deterministic order: collect relative paths, sort.
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  if (ec) return io_error("pfs: cannot list " + dir + ": " + ec.message());
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    const std::string name =
        fs::relative(path, dir, ec).generic_string();
    if (ec) return io_error("pfs: relative path failure");
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return io_error("pfs: cannot open " + path.string());
    const std::streamoff end = in.tellg();
    if (end < 0) return io_error("pfs: cannot size " + path.string());
    const auto size = static_cast<std::size_t>(end);
    in.seekg(0);
    if (!in) return io_error("pfs: cannot rewind " + path.string());
    Bytes content(size);
    if (size > 0) {
      in.read(reinterpret_cast<char*>(content.data()),
              static_cast<std::streamsize>(size));
      // in.read sets failbit on a short read, but check gcount explicitly:
      // the file may have shrunk between tellg and read.
      if (!in || static_cast<std::size_t>(in.gcount()) != size) {
        return io_error("pfs: short read from " + path.string());
      }
    }
    MLOC_ASSIGN_OR_RETURN(FileId id, storage.create(name));
    MLOC_RETURN_IF_ERROR(storage.set_contents(id, std::move(content)));
  }
  return storage;
}

}  // namespace mloc::pfs
