#include "ingest/ingest.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "parallel/runtime.hpp"
#include "plod/plod.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace mloc::ingest {

std::string idx_name(const std::string& store, const std::string& var,
                     int bin) {
  return store + "/" + var + ".bin" + std::to_string(bin) + ".idx";
}
std::string dat_name(const std::string& store, const std::string& var,
                     int bin) {
  return store + "/" + var + ".bin" + std::to_string(bin) + ".dat";
}
std::string hbx_name(const std::string& store, const std::string& var) {
  return store + "/" + var + ".hbx";
}

namespace {

/// Open the subfile if it exists (re-ingest of an existing variable reuses
/// its files), otherwise create it.
Result<pfs::FileId> open_or_create(pfs::PfsStorage* fs,
                                   const std::string& name) {
  auto existing = fs->open(name);
  if (existing.is_ok()) return existing;
  return fs->create(name);
}

/// One fragment's staged cells: the points of one chunk that fall into one
/// bin, in chunk-local row-major order.
struct FragStage {
  ChunkId chunk = 0;
  std::vector<std::uint32_t> offsets;  ///< local, ascending
  std::vector<double> values;          ///< parallel to offsets
};

/// Partition-task output for one chunk: its non-empty bins (ascending) and
/// the staged fragment for each.
struct ChunkRouting {
  std::vector<int> bins;
  std::vector<FragStage> frags;
  double route_s = 0.0;
};

/// Route one chunk's cells to bins. Two passes: a bin histogram first, so
/// every staging buffer is reserved to its exact final size (no realloc in
/// the push loop); bin ids are memoized so bin_of runs once per cell.
ChunkRouting route_chunk(const Grid& grid, const ChunkGrid& chunk_grid,
                         const BinningScheme& scheme, ChunkId chunk,
                         int nbins) {
  Stopwatch sw;
  ChunkRouting out;
  out.frags.clear();
  const Region region = chunk_grid.chunk_region(chunk);
  const std::vector<double> vals = grid.extract(region);

  std::vector<std::uint32_t> histogram(static_cast<std::size_t>(nbins), 0);
  std::vector<int> bin_ids(vals.size());
  scheme.bin_of_batch(vals, bin_ids);
  for (const int b : bin_ids) {
    ++histogram[static_cast<std::size_t>(b)];
  }

  std::vector<int> slot_of(static_cast<std::size_t>(nbins), -1);
  for (int b = 0; b < nbins; ++b) {
    const std::uint32_t n = histogram[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    slot_of[static_cast<std::size_t>(b)] = static_cast<int>(out.bins.size());
    out.bins.push_back(b);
    FragStage frag;
    frag.chunk = chunk;
    frag.offsets.reserve(n);
    frag.values.reserve(n);
    out.frags.push_back(std::move(frag));
  }
  for (std::size_t i = 0; i < vals.size(); ++i) {
    FragStage& frag = out.frags[static_cast<std::size_t>(
        slot_of[static_cast<std::size_t>(bin_ids[i])])];
    frag.offsets.push_back(static_cast<std::uint32_t>(i));
    frag.values.push_back(vals[i]);
  }
  out.route_s = sw.seconds();
  return out;
}

/// Encode-task output: everything the fold stage needs to lay the fragment
/// into the bin images, plus its private error and timing slots.
struct EncodedFragment {
  Status status = Status::ok();
  ChunkId chunk = 0;
  std::uint64_t count = 0;
  Bytes pos_blob;
  std::uint64_t pos_checksum = 0;
  double min_value = std::numeric_limits<double>::infinity();
  double max_value = -std::numeric_limits<double>::infinity();
  std::vector<Bytes> groups;  ///< one encoded payload per byte group
  double encode_s = 0.0;
};

/// Encode one staged fragment: positional index, zone map, PLoD shredding,
/// and per-group codec encode. Pure function of the stage — encoded bytes
/// are identical regardless of which thread runs it, which is what makes
/// the fold stage's output byte-identical to a serial write.
EncodedFragment encode_fragment(const StoreWriter& writer,
                                const FragStage& stage, int groups) {
  Stopwatch sw;
  EncodedFragment out;
  out.chunk = stage.chunk;
  out.count = stage.offsets.size();
  out.pos_blob = encode_positions(stage.offsets);
  out.pos_checksum = fnv1a64(out.pos_blob);
  // Zone map over the original values (NaNs excluded: they never satisfy
  // a VC, and an empty range reads as VC-disjoint).
  for (double v : stage.values) {
    if (std::isnan(v)) continue;
    out.min_value = std::min(out.min_value, v);
    out.max_value = std::max(out.max_value, v);
  }
  out.groups.resize(static_cast<std::size_t>(groups));
  if (writer.plod_capable()) {
    // One flat scratch buffer sliced into the 7 byte planes: shred_into
    // fills them in place, with no per-fragment Shredded vector churn.
    const std::size_t n = stage.values.size();
    Bytes scratch(n * sizeof(double));
    plod::PlaneSpans planes;
    std::size_t off = 0;
    for (int g = 0; g < plod::kNumGroups; ++g) {
      const std::size_t sz =
          n * static_cast<std::size_t>(plod::group_bytes(g));
      planes[g] = std::span<std::uint8_t>(scratch.data() + off, sz);
      off += sz;
    }
    plod::shred_into(stage.values, planes);
    for (int g = 0; g < groups; ++g) {
      auto enc = writer.byte_codec->encode(planes[g]);
      if (!enc.is_ok()) {
        out.status = enc.status();
        return out;
      }
      out.groups[static_cast<std::size_t>(g)] = std::move(enc).value();
    }
  } else {
    auto enc = writer.double_codec->encode(stage.values);
    if (!enc.is_ok()) {
      out.status = enc.status();
      return out;
    }
    out.groups[0] = std::move(enc).value();
  }
  out.encode_s = sw.seconds();
  return out;
}

/// Flush-task output (write-behind lands these off-thread).
struct FlushSlot {
  Status status = Status::ok();
  std::uint64_t bytes = 0;
  double flush_s = 0.0;
};

}  // namespace

Result<IngestOutput> ingest_variable(const StoreWriter& writer,
                                     const std::string& var, const Grid& grid,
                                     const WriteOptions& opts) {
  Stopwatch sw_wall;
  const VariableLayout& layout = *writer.layout;
  const ChunkGrid& chunk_grid = *writer.chunk_grid;
  IngestOutput out;
  out.stats.threads = std::max(1, opts.threads);
  out.stats.write_behind = opts.write_behind && opts.threads > 1;
  out.stats.cells_routed = grid.size();

  // --- Level V: equal-frequency binning boundaries from a sample.
  Stopwatch sw_sample;
  std::vector<double> sample;
  sample.reserve(grid.size() / layout.sample_stride + 1);
  for (std::uint64_t i = 0; i < grid.size(); i += layout.sample_stride) {
    sample.push_back(grid.at_linear(i));
  }
  if (layout.binning == BinningKind::kEqualFrequency) {
    out.scheme = BinningScheme::equal_frequency(sample, layout.num_bins);
  } else {
    double lo = sample[0], hi = sample[0];
    for (double v : sample) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(hi > lo)) hi = lo + 1.0;
    out.scheme = BinningScheme::equal_width(lo, hi, layout.num_bins);
  }
  const int nbins = out.scheme.num_bins();
  const int groups = writer.plod_capable() ? plod::kNumGroups : 1;
  out.stats.partition_s += sw_sample.seconds();

  // Subfiles for every bin, created (or reused on re-ingest) upfront in
  // bin order so FileIds match a serial write and write-behind flushing
  // never mutates the storage's file table concurrently with queries.
  out.bins.resize(static_cast<std::size_t>(nbins));
  for (int b = 0; b < nbins; ++b) {
    auto& bin = out.bins[static_cast<std::size_t>(b)];
    MLOC_ASSIGN_OR_RETURN(
        bin.idx,
        open_or_create(writer.fs, idx_name(writer.store_name, var, b)));
    MLOC_ASSIGN_OR_RETURN(
        bin.dat,
        open_or_create(writer.fs, dat_name(writer.store_name, var, b)));
  }
  const bool build_hbx = layout.index_fanout >= 2;
  if (build_hbx) {
    MLOC_ASSIGN_OR_RETURN(
        out.hbx.file,
        open_or_create(writer.fs, hbx_name(writer.store_name, var)));
  }
  // Per-bin leaf bitmaps over global grid offsets, filled during fold.
  std::vector<WahBitmap> hbx_leaves;
  if (build_hbx) hbx_leaves.resize(static_cast<std::size_t>(nbins));

  // The data all stages share. Declared before the pool so an early error
  // return destroys the pool (joining every in-flight task) first.
  const std::uint32_t num_chunks = chunk_grid.num_chunks();
  std::vector<ChunkRouting> routing(num_chunks);
  std::vector<parallel::TaskHandle> route_handles;
  // Per-bin encoded fragments in chunk-rank order. deque: push_back keeps
  // references to earlier elements stable while workers fill them.
  std::vector<std::deque<EncodedFragment>> encoded(
      static_cast<std::size_t>(nbins));
  std::vector<std::vector<parallel::TaskHandle>> encode_handles(
      static_cast<std::size_t>(nbins));
  std::vector<FlushSlot> flush_slots(static_cast<std::size_t>(nbins));
  std::vector<parallel::TaskHandle> flush_handles;

  std::unique_ptr<parallel::ThreadPool> pool;
  if (opts.threads > 1) {
    pool = std::make_unique<parallel::ThreadPool>(opts.threads);
  }

  // --- Stage 1 (partition): route each Hilbert-ordered chunk's cells to
  // bins, one independent task per chunk.
  if (pool != nullptr) {
    route_handles.reserve(num_chunks);
    for (std::uint32_t rank = 0; rank < num_chunks; ++rank) {
      const ChunkId chunk = writer.curve->chunk_at(rank);
      route_handles.push_back(pool->submit_waitable([&, rank, chunk] {
        routing[rank] =
            route_chunk(grid, chunk_grid, out.scheme, chunk, nbins);
      }));
    }
  }

  // --- Stage 2 (encode): as each chunk's routing lands (in rank order, so
  // fragment order inside every bin matches a serial write), hand its
  // fragments to encode tasks.
  for (std::uint32_t rank = 0; rank < num_chunks; ++rank) {
    if (pool != nullptr) {
      route_handles[rank].wait();
    } else {
      const ChunkId chunk = writer.curve->chunk_at(rank);
      routing[rank] =
          route_chunk(grid, chunk_grid, out.scheme, chunk, nbins);
    }
    ChunkRouting& routed = routing[rank];
    out.stats.partition_s += routed.route_s;
    for (std::size_t k = 0; k < routed.bins.size(); ++k) {
      const auto b = static_cast<std::size_t>(routed.bins[k]);
      encoded[b].emplace_back();
      EncodedFragment* slot = &encoded[b].back();
      ++out.stats.fragments_encoded;
      if (pool != nullptr) {
        auto stage =
            std::make_shared<FragStage>(std::move(routed.frags[k]));
        encode_handles[b].push_back(pool->submit_waitable(
            [slot, stage, &writer, groups] {
              *slot = encode_fragment(writer, *stage, groups);
            }));
      } else {
        *slot = encode_fragment(writer, routed.frags[k], groups);
        out.stats.encode_s += slot->encode_s;
        routed.frags[k] = FragStage{};  // release staged cells eagerly
      }
    }
    routed = ChunkRouting{};  // routing for this chunk is consumed
  }

  // --- Stages 3+4 (fold + flush): bins in order; each bin folds once its
  // fragments are encoded and flushes while later bins still encode.
  for (int b = 0; b < nbins; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    for (auto& handle : encode_handles[bi]) handle.wait();
    std::deque<EncodedFragment>& frags = encoded[bi];
    for (EncodedFragment& f : frags) {
      MLOC_RETURN_IF_ERROR(f.status);
      if (pool != nullptr) out.stats.encode_s += f.encode_s;
    }

    Stopwatch sw_fold;
    BinLayout layout;
    layout.fragments.resize(frags.size());
    std::uint64_t blob_total = 0;
    std::uint64_t dat_total = 0;
    for (const EncodedFragment& f : frags) {
      blob_total += f.pos_blob.size();
      for (const Bytes& g : f.groups) dat_total += g.size();
    }

    // Fragment table + positional-index blob section, fragment order.
    Bytes blob_section;
    blob_section.reserve(blob_total);
    for (std::size_t f = 0; f < frags.size(); ++f) {
      FragmentInfo& info = layout.fragments[f];
      info.chunk = frags[f].chunk;
      info.count = frags[f].count;
      info.positions = {blob_section.size(), frags[f].pos_blob.size(),
                        frags[f].pos_checksum};
      blob_section.insert(blob_section.end(), frags[f].pos_blob.begin(),
                          frags[f].pos_blob.end());
      info.groups.resize(static_cast<std::size_t>(groups));
      info.min_value = frags[f].min_value;
      info.max_value = frags[f].max_value;
    }

    // Payload concatenation in the exact serial order: the (M, S) level
    // order decides whether byte groups or fragments are the outer loop.
    Bytes dat;
    dat.reserve(dat_total + kSubfileFooterSize);
    auto append_segment = [&dat](Segment* seg, const Bytes& encoded_bytes) {
      seg->offset = dat.size();
      seg->length = encoded_bytes.size();
      seg->checksum = fnv1a64(encoded_bytes);
      dat.insert(dat.end(), encoded_bytes.begin(), encoded_bytes.end());
    };
    if (writer.plod_capable() && writer.layout->order == LevelOrder::kVMS) {
      for (int g = 0; g < groups; ++g) {
        for (std::size_t f = 0; f < frags.size(); ++f) {
          append_segment(
              &layout.fragments[f].groups[static_cast<std::size_t>(g)],
              frags[f].groups[static_cast<std::size_t>(g)]);
        }
      }
    } else {  // kVSM (fragments outer) and whole-value mode (one group)
      for (std::size_t f = 0; f < frags.size(); ++f) {
        for (int g = 0; g < groups; ++g) {
          append_segment(
              &layout.fragments[f].groups[static_cast<std::size_t>(g)],
              frags[f].groups[static_cast<std::size_t>(g)]);
        }
      }
    }
    if (build_hbx) {
      // Leaf bitmap: this bin's global grid positions. Chunk-local offsets
      // are re-decoded from the positional blobs (encode dropped the staged
      // offsets) and mapped through each fragment's chunk region.
      Bitmap leaf(grid.size());
      for (const EncodedFragment& f : frags) {
        MLOC_ASSIGN_OR_RETURN(const std::vector<std::uint32_t> locals,
                              decode_positions(f.pos_blob, f.count));
        const Region region = chunk_grid.chunk_region(f.chunk);
        Coord extents{};
        for (int d = 0; d < region.ndims(); ++d) extents[d] = region.extent(d);
        const NDShape local_shape(region.ndims(), extents);
        for (const std::uint32_t local : locals) {
          Coord c = local_shape.delinearize(local);
          for (int d = 0; d < region.ndims(); ++d) c[d] += region.lo(d);
          leaf.set(grid.shape().linearize(c));
        }
      }
      hbx_leaves[bi] = WahBitmap::compress(leaf);
    }
    frags.clear();  // encoded segments are folded; release them

    ByteWriter header;
    layout.serialize(header);
    auto& bin = out.bins[bi];
    bin.header_len = header.size();
    Bytes idx = std::move(header).take();
    idx.reserve(idx.size() + blob_section.size() + kSubfileFooterSize);
    idx.insert(idx.end(), blob_section.begin(), blob_section.end());
    append_subfile_footer(idx);
    append_subfile_footer(dat);
    bin.layout = std::make_shared<const BinLayout>(std::move(layout));
    out.stats.fold_s += sw_fold.seconds();

    FlushSlot* slot = &flush_slots[bi];
    auto flush = [fs = writer.fs, idx_id = bin.idx, dat_id = bin.dat, slot](
                     Bytes idx_bytes, Bytes dat_bytes) {
      Stopwatch sw_flush;
      slot->bytes = idx_bytes.size() + dat_bytes.size();
      slot->status = fs->set_contents(idx_id, std::move(idx_bytes));
      if (slot->status.is_ok()) {
        slot->status = fs->set_contents(dat_id, std::move(dat_bytes));
      }
      slot->flush_s = sw_flush.seconds();
    };
    if (pool != nullptr && opts.write_behind) {
      auto idx_ptr = std::make_shared<Bytes>(std::move(idx));
      auto dat_ptr = std::make_shared<Bytes>(std::move(dat));
      flush_handles.push_back(pool->submit_waitable([flush, idx_ptr, dat_ptr] {
        flush(std::move(*idx_ptr), std::move(*dat_ptr));
      }));
    } else {
      flush(std::move(idx), std::move(dat));
    }
  }

  // --- Hierarchical bitmap index: OR the per-bin leaves up fanout-sized
  // levels and seal the .hbx subfile. Runs on the caller's thread (it only
  // needs the leaves), overlapping any write-behind bin flushes.
  if (build_hbx) {
    Stopwatch sw_hbx;
    index::HbxBuild built =
        index::build_index(hbx_leaves, grid.size(), layout.index_fanout);
    hbx_leaves.clear();
    out.hbx.header_len = built.header.header_len;
    out.stats.fold_s += sw_hbx.seconds();
    Stopwatch sw_flush;
    const std::uint64_t hbx_bytes = built.file.size();
    MLOC_RETURN_IF_ERROR(
        writer.fs->set_contents(out.hbx.file, std::move(built.file)));
    out.stats.bytes_written += hbx_bytes;
    out.stats.flush_s += sw_flush.seconds();
    out.hbx.header =
        std::make_shared<const index::HbxHeader>(std::move(built.header));
    out.hbx.present = true;
  }

  for (auto& handle : flush_handles) handle.wait();
  for (int b = 0; b < nbins; ++b) {
    const FlushSlot& slot = flush_slots[static_cast<std::size_t>(b)];
    MLOC_RETURN_IF_ERROR(slot.status);
    out.stats.bytes_written += slot.bytes;
    out.stats.flush_s += slot.flush_s;
  }
  out.stats.bins_written = static_cast<std::uint64_t>(nbins);
  out.stats.wall_s = sw_wall.seconds();
  return out;
}

}  // namespace mloc::ingest
