// Staged ingestion pipeline — the write-path twin of src/exec.
//
// MlocStore::write_variable is a thin wrapper over ingest_variable, which
// runs the paper's layout pipeline (chunk → V binning → PLoD byte-group
// shredding → C codec, §III) in four explicit stages:
//
//   1. partition — sample quantiles, then route each Hilbert-ordered
//      chunk's cells into per-(bin, fragment) staging buffers. Each chunk
//      is an independent task; buffers are sized exactly from a first-pass
//      bin histogram, so the routing hot loop never reallocates.
//   2. encode    — position encoding, zone map, PLoD shredding, and codec
//      encode of every byte group, one task per fragment. Encoding is a
//      pure function of the fragment's values, so tasks run on a
//      parallel::ThreadPool in any order.
//   3. fold      — concatenate encoded segments into each bin's .idx/.dat
//      images in the exact serial order (V-M-S group-major vs V-S-M
//      fragment-major interleave preserved) with buffers pre-sized from
//      the encoded totals. Folding runs on the caller's thread in bin
//      order, so parallel output is byte-identical to a serial run, CRC
//      "MLCF" footers included.
//   4. flush     — write finished bin subfiles through pfs::PfsStorage.
//      With WriteOptions::write_behind the flush of bin b overlaps the
//      encode/fold of bins > b (pool tasks joined before return).
//
// Determinism: every encoded segment is a pure function of its input and
// the fold order is fixed, so stores written at any thread count are
// byte-identical — the serial path (threads <= 1) is the same code with
// every stage run inline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/chunking.hpp"
#include "array/grid.hpp"
#include "binning/binning.hpp"
#include "compress/codec.hpp"
#include "core/config.hpp"
#include "core/layout.hpp"
#include "index/hbx.hpp"
#include "pfs/pfs.hpp"
#include "sfc/hilbert.hpp"

namespace mloc::ingest {

/// Write-path tuning knobs (MlocStore::write_variable overload, service
/// config, and mloc_cli --threads/--write-behind plumb these through).
struct WriteOptions {
  /// Worker threads for the partition and encode stages. <= 1 runs every
  /// stage inline on the calling thread (the reference serial order).
  int threads = 1;
  /// Flush completed bin subfiles on pool workers while later bins are
  /// still encoding. No effect when threads <= 1.
  bool write_behind = false;
};

/// Write-path accounting for one (or a sum of) write_variable calls.
struct IngestStats {
  std::uint64_t cells_routed = 0;       ///< grid cells through partition
  std::uint64_t fragments_encoded = 0;  ///< (bin, chunk) cells produced
  std::uint64_t bins_written = 0;       ///< bin subfile pairs flushed
  std::uint64_t bytes_written = 0;      ///< .idx + .dat bytes (with footers)
  double partition_s = 0.0;  ///< wall: sample + route + stage
  double encode_s = 0.0;     ///< summed per-fragment encode CPU
  double fold_s = 0.0;       ///< wall: segment concatenation + headers
  double flush_s = 0.0;      ///< summed subfile write seconds
  double wall_s = 0.0;       ///< end-to-end ingest wall time
  int threads = 1;           ///< WriteOptions::threads actually used
  bool write_behind = false;

  IngestStats& operator+=(const IngestStats& o) noexcept {
    cells_routed += o.cells_routed;
    fragments_encoded += o.fragments_encoded;
    bins_written += o.bins_written;
    bytes_written += o.bytes_written;
    partition_s += o.partition_s;
    encode_s += o.encode_s;
    fold_s += o.fold_s;
    flush_s += o.flush_s;
    wall_s += o.wall_s;
    threads = o.threads;  // last write wins: the most recent configuration
    write_behind = o.write_behind;
    return *this;
  }
};

/// Non-owning projection of the store state the pipeline needs — the
/// write-side mirror of exec::StoreView. Valid for one ingest_variable
/// call; the caller owns everything referenced.
struct StoreWriter {
  pfs::PfsStorage* fs = nullptr;
  const VariableLayout* layout = nullptr;
  const ChunkGrid* chunk_grid = nullptr;
  const sfc::CurveOrder* curve = nullptr;
  const ByteCodec* byte_codec = nullptr;      ///< PLoD/COL mode
  const DoubleCodec* double_codec = nullptr;  ///< whole-value mode
  std::string store_name;

  [[nodiscard]] bool plod_capable() const noexcept {
    return byte_codec != nullptr;
  }
};

/// One finished bin: its subfiles (created or reused on re-ingest) and the
/// decoded fragment table, handed back so the store can warm its
/// BinHeaderCache without re-reading what it just wrote.
struct IngestedBin {
  pfs::FileId idx = 0;
  pfs::FileId dat = 0;
  std::uint64_t header_len = 0;
  std::shared_ptr<const BinLayout> layout;
};

/// The hierarchical bitmap index built alongside the bins when
/// layout.index_fanout >= 2: its sealed .hbx subfile plus the parsed
/// header, handed back so the store can warm its HbxHeaderCache.
struct IngestedIndex {
  bool present = false;
  pfs::FileId file = 0;
  std::uint64_t header_len = 0;
  std::shared_ptr<const index::HbxHeader> header;
};

struct IngestOutput {
  BinningScheme scheme;
  std::vector<IngestedBin> bins;  ///< size = scheme.num_bins()
  IngestedIndex hbx;
  IngestStats stats;
};

/// Bin subfile names: <store>/<var>.bin<k>.{idx,dat}. Shared with
/// MlocStore::open — re-ingest file reuse depends on both sides agreeing.
std::string idx_name(const std::string& store, const std::string& var,
                     int bin);
std::string dat_name(const std::string& store, const std::string& var,
                     int bin);
/// Hierarchical-index subfile name: <store>/<var>.hbx.
std::string hbx_name(const std::string& store, const std::string& var);

/// Run the full layout pipeline for one variable. Creates the bin subfiles
/// (reusing existing files of the same name on re-ingest) and leaves them
/// flushed and footer-sealed. The grid shape must already be validated
/// against the config by the caller.
[[nodiscard]] Result<IngestOutput> ingest_variable(const StoreWriter& writer,
                                     const std::string& var, const Grid& grid,
                                     const WriteOptions& opts);

}  // namespace mloc::ingest
