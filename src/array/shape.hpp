// N-dimensional shapes and coordinate arithmetic.
//
// Scientific arrays in MLOC are dense row-major grids of up to kMaxDims
// dimensions (the paper uses 2-D GTS and 3-D S3D data). NDShape stores the
// extents inline (no allocation) because coordinate <-> offset conversion
// sits on per-element hot paths in filtering and reconstruction.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/assert.hpp"

namespace mloc {

using Coord = std::array<std::uint32_t, 4>;

class NDShape {
 public:
  static constexpr int kMaxDims = 4;

  NDShape() = default;
  NDShape(std::initializer_list<std::uint32_t> extents) {
    MLOC_CHECK(extents.size() >= 1 &&
               extents.size() <= static_cast<std::size_t>(kMaxDims));
    ndims_ = static_cast<int>(extents.size());
    int i = 0;
    for (auto e : extents) extent_[i++] = e;
    recompute_strides();
  }
  NDShape(int ndims, const Coord& extents) : ndims_(ndims) {
    MLOC_CHECK(ndims >= 1 && ndims <= kMaxDims);
    extent_ = extents;
    recompute_strides();
  }

  [[nodiscard]] int ndims() const noexcept { return ndims_; }
  [[nodiscard]] std::uint32_t extent(int dim) const noexcept {
    MLOC_DCHECK(dim >= 0 && dim < ndims_);
    return extent_[dim];
  }
  [[nodiscard]] const Coord& extents() const noexcept { return extent_; }

  /// Total number of elements.
  [[nodiscard]] std::uint64_t volume() const noexcept {
    std::uint64_t v = 1;
    for (int d = 0; d < ndims_; ++d) v *= extent_[d];
    return v;
  }

  /// Row-major linear offset of a coordinate (last dim fastest).
  [[nodiscard]] std::uint64_t linearize(const Coord& c) const noexcept {
    std::uint64_t off = 0;
    for (int d = 0; d < ndims_; ++d) {
      MLOC_DCHECK(c[d] < extent_[d]);
      off += static_cast<std::uint64_t>(c[d]) * stride_[d];
    }
    return off;
  }

  /// Inverse of linearize.
  [[nodiscard]] Coord delinearize(std::uint64_t off) const noexcept {
    Coord c{};
    for (int d = 0; d < ndims_; ++d) {
      c[d] = static_cast<std::uint32_t>(off / stride_[d]);
      off %= stride_[d];
    }
    return c;
  }

  [[nodiscard]] bool contains(const Coord& c) const noexcept {
    for (int d = 0; d < ndims_; ++d) {
      if (c[d] >= extent_[d]) return false;
    }
    return true;
  }

  [[nodiscard]] bool operator==(const NDShape& o) const noexcept {
    if (ndims_ != o.ndims_) return false;
    for (int d = 0; d < ndims_; ++d) {
      if (extent_[d] != o.extent_[d]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  void recompute_strides() noexcept {
    std::uint64_t s = 1;
    for (int d = ndims_ - 1; d >= 0; --d) {
      stride_[d] = s;
      s *= extent_[d];
    }
  }

  int ndims_ = 0;
  Coord extent_{};
  std::array<std::uint64_t, 4> stride_{};
};

}  // namespace mloc
