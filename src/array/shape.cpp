#include "array/shape.hpp"

namespace mloc {

std::string NDShape::to_string() const {
  std::string out = "[";
  for (int d = 0; d < ndims_; ++d) {
    if (d) out += "x";
    out += std::to_string(extent_[d]);
  }
  out += "]";
  return out;
}

}  // namespace mloc
