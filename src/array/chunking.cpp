#include "array/chunking.hpp"

#include <algorithm>

namespace mloc {

ChunkGrid::ChunkGrid(NDShape array_shape, NDShape chunk_shape)
    : array_(array_shape), chunk_(chunk_shape) {
  MLOC_CHECK(array_.ndims() == chunk_.ndims());
  Coord lattice{};
  for (int d = 0; d < array_.ndims(); ++d) {
    MLOC_CHECK(chunk_.extent(d) > 0);
    lattice[d] = (array_.extent(d) + chunk_.extent(d) - 1) / chunk_.extent(d);
  }
  lattice_ = NDShape(array_.ndims(), lattice);
}

Region ChunkGrid::chunk_region(ChunkId id) const noexcept {
  const Coord cc = chunk_coord(id);
  Coord lo{};
  Coord hi{};
  for (int d = 0; d < array_.ndims(); ++d) {
    lo[d] = cc[d] * chunk_.extent(d);
    hi[d] = std::min<std::uint32_t>(lo[d] + chunk_.extent(d), array_.extent(d));
  }
  return {array_.ndims(), lo, hi};
}

ChunkId ChunkGrid::chunk_of(const Coord& element) const noexcept {
  Coord cc{};
  for (int d = 0; d < array_.ndims(); ++d) {
    MLOC_DCHECK(element[d] < array_.extent(d));
    cc[d] = element[d] / chunk_.extent(d);
  }
  return chunk_id(cc);
}

std::vector<ChunkId> ChunkGrid::chunks_overlapping(const Region& query) const {
  MLOC_CHECK(query.ndims() == array_.ndims());
  Coord lo{};
  Coord hi{};
  for (int d = 0; d < array_.ndims(); ++d) {
    if (query.lo(d) >= array_.extent(d) || query.lo(d) >= query.hi(d)) {
      return {};
    }
    lo[d] = query.lo(d) / chunk_.extent(d);
    const std::uint32_t last_elem =
        std::min<std::uint32_t>(query.hi(d), array_.extent(d)) - 1;
    hi[d] = last_elem / chunk_.extent(d) + 1;
  }
  std::vector<ChunkId> out;
  const Region lattice_box(array_.ndims(), lo, hi);
  out.reserve(lattice_box.volume());
  lattice_box.for_each(
      [&](const Coord& cc) { out.push_back(chunk_id(cc)); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mloc
