#include "array/region.hpp"

#include <algorithm>

namespace mloc {

Region Region::intersection(const Region& other) const noexcept {
  MLOC_DCHECK(other.ndims_ == ndims_);
  Region out;
  out.ndims_ = ndims_;
  for (int d = 0; d < ndims_; ++d) {
    out.lo_[d] = std::max(lo_[d], other.lo_[d]);
    out.hi_[d] = std::max(out.lo_[d], std::min(hi_[d], other.hi_[d]));
  }
  return out;
}

std::string Region::to_string() const {
  std::string out = "{";
  for (int d = 0; d < ndims_; ++d) {
    if (d) out += ", ";
    out += '[';
    out += std::to_string(lo_[d]);
    out += ',';
    out += std::to_string(hi_[d]);
    out += ')';
  }
  out += "}";
  return out;
}

}  // namespace mloc
