// Chunk lattice over an N-D array.
//
// MLOC splits every variable into fixed-size chunks (paper: 2048x2048 for
// GTS, 128^3 for S3D). Chunks are the unit of Hilbert-curve reordering,
// binning statistics, compression, and rank assignment. ChunkGrid maps
// between chunk ids (row-major over the chunk lattice), chunk coordinates,
// and element regions; ragged right/bottom edges are clipped.
#pragma once

#include <cstdint>
#include <vector>

#include "array/region.hpp"
#include "array/shape.hpp"

namespace mloc {

using ChunkId = std::uint32_t;

class ChunkGrid {
 public:
  ChunkGrid() = default;

  /// Lattice of `chunk_shape`-sized tiles covering `array_shape`.
  ChunkGrid(NDShape array_shape, NDShape chunk_shape);

  [[nodiscard]] const NDShape& array_shape() const noexcept { return array_; }
  [[nodiscard]] const NDShape& chunk_shape() const noexcept { return chunk_; }
  /// Shape of the chunk lattice itself (#chunks per dimension).
  [[nodiscard]] const NDShape& lattice_shape() const noexcept { return lattice_; }
  [[nodiscard]] std::uint32_t num_chunks() const noexcept {
    return static_cast<std::uint32_t>(lattice_.volume());
  }

  /// Chunk-lattice coordinate of a chunk id.
  [[nodiscard]] Coord chunk_coord(ChunkId id) const noexcept {
    return lattice_.delinearize(id);
  }
  [[nodiscard]] ChunkId chunk_id(const Coord& chunk_coord) const noexcept {
    return static_cast<ChunkId>(lattice_.linearize(chunk_coord));
  }

  /// Element region covered by a chunk (clipped at array bounds).
  [[nodiscard]] Region chunk_region(ChunkId id) const noexcept;

  /// Chunk containing an element coordinate.
  [[nodiscard]] ChunkId chunk_of(const Coord& element) const noexcept;

  /// Ids of all chunks whose region intersects `query`, ascending id order.
  [[nodiscard]] std::vector<ChunkId> chunks_overlapping(const Region& query) const;

  /// Max number of elements any chunk holds (= chunk_shape volume).
  [[nodiscard]] std::uint64_t max_chunk_elements() const noexcept {
    return chunk_.volume();
  }

 private:
  NDShape array_;
  NDShape chunk_;
  NDShape lattice_;
};

}  // namespace mloc
