// Axis-aligned hyper-rectangles ("regions") — the spatial-constraint (SC)
// primitive of every MLOC query. A Region is a half-open box [lo, hi) per
// dimension, in grid coordinates.
#pragma once

#include <cstdint>
#include <string>

#include "array/shape.hpp"

namespace mloc {

class Region {
 public:
  Region() = default;

  /// Box [lo, hi) per dimension. Precondition: lo[d] <= hi[d].
  Region(int ndims, const Coord& lo, const Coord& hi) : ndims_(ndims), lo_(lo), hi_(hi) {
    MLOC_CHECK(ndims >= 1 && ndims <= NDShape::kMaxDims);
    for (int d = 0; d < ndims; ++d) MLOC_CHECK(lo[d] <= hi[d]);
  }

  /// The full extent of `shape`.
  static Region whole(const NDShape& shape) {
    Coord lo{};
    return {shape.ndims(), lo, shape.extents()};
  }

  [[nodiscard]] int ndims() const noexcept { return ndims_; }
  [[nodiscard]] std::uint32_t lo(int d) const noexcept { return lo_[d]; }
  [[nodiscard]] std::uint32_t hi(int d) const noexcept { return hi_[d]; }
  [[nodiscard]] const Coord& lo() const noexcept { return lo_; }
  [[nodiscard]] const Coord& hi() const noexcept { return hi_; }
  [[nodiscard]] std::uint32_t extent(int d) const noexcept {
    return hi_[d] - lo_[d];
  }

  [[nodiscard]] std::uint64_t volume() const noexcept {
    std::uint64_t v = 1;
    for (int d = 0; d < ndims_; ++d) v *= hi_[d] - lo_[d];
    return v;
  }
  [[nodiscard]] bool empty() const noexcept {
    for (int d = 0; d < ndims_; ++d) {
      if (lo_[d] >= hi_[d]) return true;
    }
    return ndims_ == 0;
  }

  [[nodiscard]] bool contains(const Coord& c) const noexcept {
    for (int d = 0; d < ndims_; ++d) {
      if (c[d] < lo_[d] || c[d] >= hi_[d]) return false;
    }
    return true;
  }

  /// True when `other` lies entirely inside this region.
  [[nodiscard]] bool contains(const Region& other) const noexcept {
    MLOC_DCHECK(other.ndims_ == ndims_);
    for (int d = 0; d < ndims_; ++d) {
      if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
    }
    return true;
  }

  [[nodiscard]] bool intersects(const Region& other) const noexcept {
    MLOC_DCHECK(other.ndims_ == ndims_);
    for (int d = 0; d < ndims_; ++d) {
      if (other.hi_[d] <= lo_[d] || other.lo_[d] >= hi_[d]) return false;
    }
    return true;
  }

  /// Component-wise intersection (possibly empty).
  [[nodiscard]] Region intersection(const Region& other) const noexcept;

  [[nodiscard]] bool operator==(const Region& o) const noexcept {
    if (ndims_ != o.ndims_) return false;
    for (int d = 0; d < ndims_; ++d) {
      if (lo_[d] != o.lo_[d] || hi_[d] != o.hi_[d]) return false;
    }
    return true;
  }

  /// Invoke fn(coord) for every grid point in the region, row-major order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (empty()) return;
    Coord c = lo_;
    while (true) {
      fn(static_cast<const Coord&>(c));
      int d = ndims_ - 1;
      while (d >= 0) {
        if (++c[d] < hi_[d]) break;
        c[d] = lo_[d];
        --d;
      }
      if (d < 0) return;
    }
  }

  [[nodiscard]] std::string to_string() const;

 private:
  int ndims_ = 0;
  Coord lo_{};
  Coord hi_{};
};

}  // namespace mloc
