// Dense row-major grid of doubles — MLOC's in-memory representation of one
// variable at one time step (the unit that gets ingested into a store).
#pragma once

#include <span>
#include <vector>

#include "array/region.hpp"
#include "array/shape.hpp"

namespace mloc {

class Grid {
 public:
  Grid() = default;
  explicit Grid(NDShape shape)
      : shape_(shape), data_(shape.volume(), 0.0) {}
  Grid(NDShape shape, std::vector<double> data)
      : shape_(shape), data_(std::move(data)) {
    MLOC_CHECK(data_.size() == shape_.volume());
  }

  [[nodiscard]] const NDShape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double at(const Coord& c) const noexcept {
    return data_[shape_.linearize(c)];
  }
  double& at(const Coord& c) noexcept { return data_[shape_.linearize(c)]; }

  [[nodiscard]] double at_linear(std::uint64_t off) const noexcept {
    MLOC_DCHECK(off < data_.size());
    return data_[off];
  }
  double& at_linear(std::uint64_t off) noexcept {
    MLOC_DCHECK(off < data_.size());
    return data_[off];
  }

  [[nodiscard]] std::span<const double> values() const noexcept { return data_; }
  [[nodiscard]] std::span<double> values() noexcept { return data_; }

  /// Copy out the values inside `region`, row-major within the region.
  [[nodiscard]] std::vector<double> extract(const Region& region) const;

  /// Write `values` (region-row-major) into `region` of this grid.
  void insert(const Region& region, std::span<const double> values);

 private:
  NDShape shape_;
  std::vector<double> data_;
};

}  // namespace mloc
