#include "array/grid.hpp"

namespace mloc {

std::vector<double> Grid::extract(const Region& region) const {
  MLOC_CHECK(region.ndims() == shape_.ndims());
  MLOC_CHECK(Region::whole(shape_).contains(region));
  std::vector<double> out;
  out.reserve(region.volume());
  // Copy whole innermost-dimension runs at a time: each run is contiguous
  // in the row-major backing array.
  const int last = shape_.ndims() - 1;
  const std::uint32_t run = region.extent(last);
  if (run == 0) return out;
  Region outer = region;  // iterate all dims but the last
  Coord hi = region.hi();
  hi[last] = region.lo(last) + 1;
  outer = Region(region.ndims(), region.lo(), hi);
  outer.for_each([&](const Coord& c) {
    const std::uint64_t base = shape_.linearize(c);
    out.insert(out.end(), data_.begin() + static_cast<std::ptrdiff_t>(base),
               data_.begin() + static_cast<std::ptrdiff_t>(base + run));
  });
  return out;
}

void Grid::insert(const Region& region, std::span<const double> values) {
  MLOC_CHECK(region.ndims() == shape_.ndims());
  MLOC_CHECK(Region::whole(shape_).contains(region));
  MLOC_CHECK(values.size() == region.volume());
  const int last = shape_.ndims() - 1;
  const std::uint32_t run = region.extent(last);
  if (run == 0) return;
  Coord hi = region.hi();
  hi[last] = region.lo(last) + 1;
  const Region outer(region.ndims(), region.lo(), hi);
  std::size_t src = 0;
  outer.for_each([&](const Coord& c) {
    const std::uint64_t base = shape_.linearize(c);
    for (std::uint32_t i = 0; i < run; ++i) data_[base + i] = values[src++];
  });
}

}  // namespace mloc
