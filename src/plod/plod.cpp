#include "plod/plod.hpp"

#include <cmath>
#include <cstring>

#include "util/assert.hpp"

namespace mloc::plod {

double level_max_relative_error(int level) noexcept {
  MLOC_CHECK(level >= 1 && level <= kNumGroups);
  if (level == kNumGroups) return 0.0;
  // level L keeps the top (L+1) bytes = 12 header bits + (8(L+1)-12)
  // mantissa bits; 8*(7-L) mantissa bits are unknown. Midpoint fill makes
  // the worst-case error half the unknown span:
  //   2^(missing_bits - 1) ulps = 2^(missing_bits - 1 - 52) relative
  // (relative to a mantissa of at least 1.0).
  const int missing_bits = 8 * (kNumGroups - level);
  return std::ldexp(1.0, missing_bits - 1 - 52);
}

Shredded shred(std::span<const double> values) {
  Shredded out;
  out.count = values.size();
  out.groups[0].resize(values.size() * 2);
  for (int g = 1; g < kNumGroups; ++g) {
    out.groups[g].resize(values.size());
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof bits);
    // Big-endian byte order: byte 0 = sign/exponent-high.
    out.groups[0][2 * i] = static_cast<std::uint8_t>(bits >> 56);
    out.groups[0][2 * i + 1] = static_cast<std::uint8_t>(bits >> 48);
    for (int g = 1; g < kNumGroups; ++g) {
      out.groups[g][i] = static_cast<std::uint8_t>(bits >> (8 * (6 - g)));
    }
  }
  return out;
}

Result<std::vector<double>> assemble(
    std::span<const std::span<const std::uint8_t>> groups, int level,
    std::size_t count) {
  if (level < 1 || level > kNumGroups) {
    return invalid_argument("PLoD level must be in [1,7]");
  }
  if (groups.size() < static_cast<std::size_t>(level)) {
    return invalid_argument("fewer byte groups than requested level");
  }
  for (int g = 0; g < level; ++g) {
    if (groups[g].size() != count * static_cast<std::size_t>(group_bytes(g))) {
      return corrupt_data("PLoD group size mismatches value count");
    }
  }

  // Dummy fill for absent low-order bytes: first missing byte 0x7F, rest
  // 0xFF — the midpoint of the unknown interval (paper §III-D-3).
  std::uint64_t fill = 0;
  if (level < kNumGroups) {
    const int missing = kNumGroups - level;  // missing groups, 1 byte each
    fill = 0x7Full << (8 * (missing - 1));
    for (int b = 0; b < missing - 1; ++b) {
      fill |= 0xFFull << (8 * b);
    }
  }

  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    MLOC_DCHECK(2 * i + 1 < groups[0].size());
    std::uint64_t bits =
        (static_cast<std::uint64_t>(groups[0][2 * i]) << 56) |
        (static_cast<std::uint64_t>(groups[0][2 * i + 1]) << 48);
    for (int g = 1; g < level; ++g) {
      MLOC_DCHECK(i < groups[g].size());
      bits |= static_cast<std::uint64_t>(groups[g][i]) << (8 * (6 - g));
    }
    bits |= fill;
    std::memcpy(&out[i], &bits, sizeof bits);
  }
  return out;
}

Result<std::vector<double>> assemble(const Shredded& shredded, int level) {
  std::array<std::span<const std::uint8_t>, kNumGroups> spans;
  for (int g = 0; g < kNumGroups; ++g) {
    spans[g] = shredded.groups[g];
  }
  return assemble(std::span<const std::span<const std::uint8_t>>(
                      spans.data(), spans.size()),
                  level, shredded.count);
}

}  // namespace mloc::plod
