#include "plod/plod.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/assert.hpp"

// The hot shred/assemble paths below come in three tiers, best first:
//   1. A byte-interleave (punpck) tree using the compiler's portable vector
//      extensions — clang or GCC >= 12, little-endian only. Sixteen values
//      per iteration, four interleave stages; compiles to SSE2 punpck
//      instructions on x86-64 with no intrinsics headers.
//   2. Portable C++ fallback: an unrolled SWAR 8x8 delta-swap transpose for
//      shred, and a level-templated word-build loop for assemble
//      (little-endian only).
//   3. The per-value scalar loop (any endianness) — also retained verbatim
//      under mloc::detail::scalar for differential tests and bench A/B.
// All tiers produce byte-identical planes/values.
#if defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 12)
#define MLOC_PLOD_SHUFFLE 1
#else
#define MLOC_PLOD_SHUFFLE 0
#endif

namespace mloc::plod {
namespace {

/// Dummy fill for absent low-order bytes: first missing byte 0x7F, rest
/// 0xFF — the midpoint of the unknown interval (paper §III-D-3).
std::uint64_t fill_for_level(int level) noexcept {
  std::uint64_t fill = 0;
  if (level < kNumGroups) {
    const int missing = kNumGroups - level;  // missing groups, 1 byte each
    fill = 0x7Full << (8 * (missing - 1));
    for (int b = 0; b < missing - 1; ++b) {
      fill |= 0xFFull << (8 * b);
    }
  }
  return fill;
}

// ---------------------------------------------------------------------------
// SWAR 8×8 byte-matrix transpose (DESIGN.md §11). Rows are uint64 words:
// byte k of x[i] is matrix element (i, k). Three rounds of delta-swaps
// exchange row/column index bits at 4-, 2-, and 1-byte granularity; the
// function computes a true transpose, so it is its own inverse. Fully
// unrolled — plain shifts and masks, no intrinsics.

#define MLOC_DSWAP(a, b, sh, m)                           \
  do {                                                    \
    const std::uint64_t t_ = (((a) >> (sh)) ^ (b)) & (m); \
    (b) ^= t_;                                            \
    (a) ^= t_ << (sh);                                    \
  } while (0)

inline void transpose8x8(std::uint64_t x[8]) noexcept {
  MLOC_DSWAP(x[0], x[4], 32, 0x00000000FFFFFFFFull);
  MLOC_DSWAP(x[1], x[5], 32, 0x00000000FFFFFFFFull);
  MLOC_DSWAP(x[2], x[6], 32, 0x00000000FFFFFFFFull);
  MLOC_DSWAP(x[3], x[7], 32, 0x00000000FFFFFFFFull);
  MLOC_DSWAP(x[0], x[2], 16, 0x0000FFFF0000FFFFull);
  MLOC_DSWAP(x[1], x[3], 16, 0x0000FFFF0000FFFFull);
  MLOC_DSWAP(x[4], x[6], 16, 0x0000FFFF0000FFFFull);
  MLOC_DSWAP(x[5], x[7], 16, 0x0000FFFF0000FFFFull);
  MLOC_DSWAP(x[0], x[1], 8, 0x00FF00FF00FF00FFull);
  MLOC_DSWAP(x[2], x[3], 8, 0x00FF00FF00FF00FFull);
  MLOC_DSWAP(x[4], x[5], 8, 0x00FF00FF00FF00FFull);
  MLOC_DSWAP(x[6], x[7], 8, 0x00FF00FF00FF00FFull);
}

#undef MLOC_DSWAP

/// Spread the low 4 bytes of v to the even byte positions of the result.
inline std::uint64_t spread_bytes(std::uint64_t v) noexcept {
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  return v;
}

void check_plane_sizes(const PlaneSpans& planes, std::size_t count) {
  for (int g = 0; g < kNumGroups; ++g) {
    MLOC_CHECK(planes[g].size() ==
               count * static_cast<std::size_t>(group_bytes(g)));
  }
}

// ---------------------------------------------------------------------------
// Byte-interleave tree (DESIGN.md §11). A 16-value × 8-byte block is a byte
// matrix; four rounds of pairwise byte interleaves (x86 punpcklbw/punpckhbw)
// transpose it between value order and plane order. Group 0's on-disk layout
// — [byte7, byte6] pairs per value — is itself one interleave stage, so the
// fast paths get it for free (shred) or for one word-lane byte swap
// (assemble). Expressed with GNU vector extensions + __builtin_shufflevector
// so the compiler schedules registers; little-endian only (memory byte p of
// a double is value byte p).

#if MLOC_PLOD_SHUFFLE

typedef std::uint8_t V16qu __attribute__((vector_size(16)));
typedef std::uint16_t V8hu __attribute__((vector_size(16)));

// Interleave helpers named for the x86 instructions they compile to (the
// patterns are equally vectorizable on other ISAs). Inline functions rather
// than macros so operands count as uses (-Wunused-but-set-variable).
inline V16qu unpack_lo8(V16qu a, V16qu b) noexcept {
  return __builtin_shufflevector(a, b, 0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5,
                                 21, 6, 22, 7, 23);
}
inline V16qu unpack_hi8(V16qu a, V16qu b) noexcept {
  return __builtin_shufflevector(a, b, 8, 24, 9, 25, 10, 26, 11, 27, 12, 28,
                                 13, 29, 14, 30, 15, 31);
}
inline V16qu unpack_lo16(V16qu a, V16qu b) noexcept {
  return __builtin_shufflevector(a, b, 0, 1, 16, 17, 2, 3, 18, 19, 4, 5, 20,
                                 21, 6, 7, 22, 23);
}
inline V16qu unpack_hi16(V16qu a, V16qu b) noexcept {
  return __builtin_shufflevector(a, b, 8, 9, 24, 25, 10, 11, 26, 27, 12, 13,
                                 28, 29, 14, 15, 30, 31);
}
inline V16qu unpack_lo32(V16qu a, V16qu b) noexcept {
  return __builtin_shufflevector(a, b, 0, 1, 2, 3, 16, 17, 18, 19, 4, 5, 6, 7,
                                 20, 21, 22, 23);
}
inline V16qu unpack_hi32(V16qu a, V16qu b) noexcept {
  return __builtin_shufflevector(a, b, 8, 9, 10, 11, 24, 25, 26, 27, 12, 13,
                                 14, 15, 28, 29, 30, 31);
}

inline V16qu splat16(std::uint8_t b) noexcept {
  return V16qu{b, b, b, b, b, b, b, b, b, b, b, b, b, b, b, b};
}

inline V16qu load16(const std::uint8_t* p) noexcept {
  V16qu r;
  std::memcpy(&r, p, 16);
  return r;
}

/// Swap adjacent bytes within each 16-bit lane (SSE2-expressible).
inline V16qu swap_byte_pairs(V16qu x) noexcept {
  V8hu w;
  std::memcpy(&w, &x, 16);
  w = (V8hu)((w << 8) | (w >> 8));
  std::memcpy(&x, &w, 16);
  return x;
}

/// Shred 16 values per iteration: four punpck stages turn 16 rows (values)
/// of 8 bytes into 8 planes of 16 bytes; group 0 is one more interleave of
/// the byte-7 and byte-6 planes. Returns the blocked prefix length.
std::size_t shred_shuffle(const double* values, std::size_t n,
                          std::uint8_t* g0,
                          std::uint8_t* const gp[kNumGroups]) noexcept {
  // Local pointer copies: the byte-typed stores below would otherwise be
  // assumed to alias the caller's pointer array, forcing reloads per
  // iteration.
  std::uint8_t* const q1 = gp[1];
  std::uint8_t* const q2 = gp[2];
  std::uint8_t* const q3 = gp[3];
  std::uint8_t* const q4 = gp[4];
  std::uint8_t* const q5 = gp[5];
  std::uint8_t* const q6 = gp[6];
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    V16qu in[8];
    std::memcpy(in, values + i, 128);
    // Stage 1 pairs values {2k, 2k+8} (low) and {2k+1, 2k+9} (high).
    const V16qu jl0 = unpack_lo8(in[0], in[4]);
    const V16qu jh0 = unpack_hi8(in[0], in[4]);
    const V16qu jl1 = unpack_lo8(in[1], in[5]);
    const V16qu jh1 = unpack_hi8(in[1], in[5]);
    const V16qu jl2 = unpack_lo8(in[2], in[6]);
    const V16qu jh2 = unpack_hi8(in[2], in[6]);
    const V16qu jl3 = unpack_lo8(in[3], in[7]);
    const V16qu jh3 = unpack_hi8(in[3], in[7]);
    // Stage 2: value groups of four, two planes per register.
    const V16qu ka = unpack_lo8(jl0, jl2);
    const V16qu kb = unpack_hi8(jl0, jl2);
    const V16qu kc = unpack_lo8(jl1, jl3);
    const V16qu kd = unpack_hi8(jl1, jl3);
    const V16qu ke = unpack_lo8(jh0, jh2);
    const V16qu kf = unpack_hi8(jh0, jh2);
    const V16qu kg = unpack_lo8(jh1, jh3);
    const V16qu kh = unpack_hi8(jh1, jh3);
    // Stage 3: even values / odd values, one plane pair per register.
    const V16qu ma = unpack_lo8(ka, kc);
    const V16qu mb = unpack_hi8(ka, kc);
    const V16qu mc = unpack_lo8(kb, kd);
    const V16qu md = unpack_hi8(kb, kd);
    const V16qu me = unpack_lo8(ke, kg);
    const V16qu mf = unpack_hi8(ke, kg);
    const V16qu mg = unpack_lo8(kf, kh);
    const V16qu mh = unpack_hi8(kf, kh);
    // Stage 4: complete planes p0..p7 (memory byte position, LSB first).
    const V16qu p0 = unpack_lo8(ma, me);
    const V16qu p1 = unpack_hi8(ma, me);
    const V16qu p2 = unpack_lo8(mb, mf);
    const V16qu p3 = unpack_hi8(mb, mf);
    const V16qu p4 = unpack_lo8(mc, mg);
    const V16qu p5 = unpack_hi8(mc, mg);
    const V16qu p6 = unpack_lo8(md, mh);
    const V16qu p7 = unpack_hi8(md, mh);
    const V16qu g0lo = unpack_lo8(p7, p6);
    const V16qu g0hi = unpack_hi8(p7, p6);
    std::memcpy(g0 + 2 * i, &g0lo, 16);
    std::memcpy(g0 + 2 * i + 16, &g0hi, 16);
    std::memcpy(q1 + i, &p5, 16);
    std::memcpy(q2 + i, &p4, 16);
    std::memcpy(q3 + i, &p3, 16);
    std::memcpy(q4 + i, &p2, 16);
    std::memcpy(q5 + i, &p1, 16);
    std::memcpy(q6 + i, &p0, 16);
  }
  return i;
}

/// Assemble 16 values per iteration by running the interleave tree in the
/// plane→value direction. Group 0 loads already hold the (byte7, byte6)
/// stage-1 interleave — a byte-pair swap puts them in tree order. Absent
/// planes are constant fill splats, folded per Level.
template <int Level>
std::size_t assemble_shuffle(const std::uint8_t* g0,
                             const std::uint8_t* const gp[kNumGroups],
                             std::uint64_t fill, std::size_t count,
                             double* out) noexcept {
  const V16qu f0 = splat16(static_cast<std::uint8_t>(fill));
  const V16qu f1 = splat16(static_cast<std::uint8_t>(fill >> 8));
  const V16qu f2 = splat16(static_cast<std::uint8_t>(fill >> 16));
  const V16qu f3 = splat16(static_cast<std::uint8_t>(fill >> 24));
  const V16qu f4 = splat16(static_cast<std::uint8_t>(fill >> 32));
  const V16qu f5 = splat16(static_cast<std::uint8_t>(fill >> 40));
  // Local pointer copies so the memcpy stores into `out` are not assumed to
  // alias the caller's pointer array (see shred_shuffle).
  const std::uint8_t* const q1 = gp[1];
  const std::uint8_t* const q2 = gp[2];
  const std::uint8_t* const q3 = gp[3];
  const std::uint8_t* const q4 = gp[4];
  const std::uint8_t* const q5 = gp[5];
  const std::uint8_t* const q6 = gp[6];
  std::size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    // Plane p (memory byte position) comes from group 6-p for p in [1,6].
    const V16qu p0 = (Level > 6) ? load16(q6 + i) : f0;
    const V16qu p1 = (Level > 5) ? load16(q5 + i) : f1;
    const V16qu p2 = (Level > 4) ? load16(q4 + i) : f2;
    const V16qu p3 = (Level > 3) ? load16(q3 + i) : f3;
    const V16qu p4 = (Level > 2) ? load16(q2 + i) : f4;
    const V16qu p5 = (Level > 1) ? load16(q1 + i) : f5;
    const V16qu a_lo = unpack_lo8(p0, p1);
    const V16qu a_hi = unpack_hi8(p0, p1);
    const V16qu b_lo = unpack_lo8(p2, p3);
    const V16qu b_hi = unpack_hi8(p2, p3);
    const V16qu c_lo = unpack_lo8(p4, p5);
    const V16qu c_hi = unpack_hi8(p4, p5);
    const V16qu d_lo = swap_byte_pairs(load16(g0 + 2 * i));
    const V16qu d_hi = swap_byte_pairs(load16(g0 + 2 * i + 16));
    const V16qu e_lo = unpack_lo16(a_lo, b_lo);
    const V16qu e_hi = unpack_hi16(a_lo, b_lo);
    const V16qu f_lo = unpack_lo16(a_hi, b_hi);
    const V16qu f_hi = unpack_hi16(a_hi, b_hi);
    const V16qu g_lo = unpack_lo16(c_lo, d_lo);
    const V16qu g_hi = unpack_hi16(c_lo, d_lo);
    const V16qu h_lo = unpack_lo16(c_hi, d_hi);
    const V16qu h_hi = unpack_hi16(c_hi, d_hi);
    V16qu o[8];
    o[0] = unpack_lo32(e_lo, g_lo);
    o[1] = unpack_hi32(e_lo, g_lo);
    o[2] = unpack_lo32(e_hi, g_hi);
    o[3] = unpack_hi32(e_hi, g_hi);
    o[4] = unpack_lo32(f_lo, h_lo);
    o[5] = unpack_hi32(f_lo, h_lo);
    o[6] = unpack_lo32(f_hi, h_hi);
    o[7] = unpack_hi32(f_hi, h_hi);
    std::memcpy(out + i, o, 128);
  }
  return i;
}

#endif  // MLOC_PLOD_SHUFFLE

/// Assemble dispatch target for one compile-time level: shuffle-tree bulk
/// (when available) plus a word-build loop with the group accesses unrolled
/// at compile time — the runtime-bound inner loop of the scalar reference
/// defeats vectorization; this version the compiler vectorizes well.
template <int Level>
void assemble_fast(const std::uint8_t* g0,
                   const std::uint8_t* const gp[kNumGroups],
                   std::uint64_t fill, std::size_t count, double* out) {
  std::size_t i = 0;
#if MLOC_PLOD_SHUFFLE
  i = assemble_shuffle<Level>(g0, gp, fill, count, out);
#endif
  // Word-build tail (the whole range when the shuffle tier is absent).
  // Local pointer copies for the same aliasing reason as the bulk tiers.
  const std::uint8_t* const q1 = gp[1];
  const std::uint8_t* const q2 = gp[2];
  const std::uint8_t* const q3 = gp[3];
  const std::uint8_t* const q4 = gp[4];
  const std::uint8_t* const q5 = gp[5];
  const std::uint8_t* const q6 = gp[6];
  for (; i < count; ++i) {
    std::uint64_t bits = (static_cast<std::uint64_t>(g0[2 * i]) << 56) |
                         (static_cast<std::uint64_t>(g0[2 * i + 1]) << 48) |
                         fill;
    if constexpr (Level > 1) bits |= static_cast<std::uint64_t>(q1[i]) << 40;
    if constexpr (Level > 2) bits |= static_cast<std::uint64_t>(q2[i]) << 32;
    if constexpr (Level > 3) bits |= static_cast<std::uint64_t>(q3[i]) << 24;
    if constexpr (Level > 4) bits |= static_cast<std::uint64_t>(q4[i]) << 16;
    if constexpr (Level > 5) bits |= static_cast<std::uint64_t>(q5[i]) << 8;
    if constexpr (Level > 6) bits |= static_cast<std::uint64_t>(q6[i]);
    std::memcpy(out + i, &bits, sizeof bits);
  }
}

}  // namespace

double level_max_relative_error(int level) noexcept {
  MLOC_CHECK(level >= 1 && level <= kNumGroups);
  if (level == kNumGroups) return 0.0;
  // level L keeps the top (L+1) bytes = 12 header bits + (8(L+1)-12)
  // mantissa bits; 8*(7-L) mantissa bits are unknown. Midpoint fill makes
  // the worst-case error half the unknown span:
  //   2^(missing_bits - 1) ulps = 2^(missing_bits - 1 - 52) relative
  // (relative to a mantissa of at least 1.0).
  const int missing_bits = 8 * (kNumGroups - level);
  return std::ldexp(1.0, missing_bits - 1 - 52);
}

void shred_into(std::span<const double> values, const PlaneSpans& planes) {
  const std::size_t n = values.size();
  check_plane_sizes(planes, n);
  std::uint8_t* g0 = planes[0].data();
  std::uint8_t* gp[kNumGroups] = {};
  for (int g = 1; g < kNumGroups; ++g) gp[g] = planes[g].data();

  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
#if MLOC_PLOD_SHUFFLE
    i = shred_shuffle(values.data(), n, g0, gp);
#else
    // Unrolled SWAR transpose, 8 values per iteration: one 8-byte store per
    // plane, group 0 interleaved via byte spreads.
    for (; i + 8 <= n; i += 8) {
      std::uint64_t x[8];
      std::memcpy(x, values.data() + i, 64);
      transpose8x8(x);
      const std::uint64_t a = x[7];  // byte-7 plane (sign/exponent)
      const std::uint64_t b = x[6];
      const std::uint64_t lo = spread_bytes(a & 0xFFFFFFFFull) |
                               (spread_bytes(b & 0xFFFFFFFFull) << 8);
      const std::uint64_t hi =
          spread_bytes(a >> 32) | (spread_bytes(b >> 32) << 8);
      std::memcpy(g0 + 2 * i, &lo, 8);
      std::memcpy(g0 + 2 * i + 8, &hi, 8);
      std::memcpy(gp[1] + i, &x[5], 8);
      std::memcpy(gp[2] + i, &x[4], 8);
      std::memcpy(gp[3] + i, &x[3], 8);
      std::memcpy(gp[4] + i, &x[2], 8);
      std::memcpy(gp[5] + i, &x[1], 8);
      std::memcpy(gp[6] + i, &x[0], 8);
    }
#endif
  }
  // Per-value tail (full range on big-endian), identical to the scalar
  // reference.
  for (; i < n; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof bits);
    g0[2 * i] = static_cast<std::uint8_t>(bits >> 56);
    g0[2 * i + 1] = static_cast<std::uint8_t>(bits >> 48);
    for (int g = 1; g < kNumGroups; ++g) {
      gp[g][i] = static_cast<std::uint8_t>(bits >> (8 * (6 - g)));
    }
  }
}

Shredded shred(std::span<const double> values) {
  Shredded out;
  out.count = values.size();
  PlaneSpans planes;
  for (int g = 0; g < kNumGroups; ++g) {
    out.groups[g].resize(values.size() *
                         static_cast<std::size_t>(group_bytes(g)));
    planes[g] = out.groups[g];
  }
  shred_into(values, planes);
  return out;
}

Status assemble_into(std::span<const std::span<const std::uint8_t>> groups,
                     int level, std::span<double> out) {
  if (level < 1 || level > kNumGroups) {
    return invalid_argument("PLoD level must be in [1,7]");
  }
  if (groups.size() < static_cast<std::size_t>(level)) {
    return invalid_argument("fewer byte groups than requested level");
  }
  const std::size_t count = out.size();
  for (int g = 0; g < level; ++g) {
    if (groups[g].size() != count * static_cast<std::size_t>(group_bytes(g))) {
      return corrupt_data("PLoD group size mismatches value count");
    }
  }

  const std::uint64_t fill = fill_for_level(level);
  const std::uint8_t* g0 = groups[0].data();
  const std::uint8_t* gp[kNumGroups] = {};
  for (int g = 1; g < level; ++g) gp[g] = groups[g].data();

  if constexpr (std::endian::native == std::endian::little) {
    switch (level) {
      case 1: assemble_fast<1>(g0, gp, fill, count, out.data()); break;
      case 2: assemble_fast<2>(g0, gp, fill, count, out.data()); break;
      case 3: assemble_fast<3>(g0, gp, fill, count, out.data()); break;
      case 4: assemble_fast<4>(g0, gp, fill, count, out.data()); break;
      case 5: assemble_fast<5>(g0, gp, fill, count, out.data()); break;
      case 6: assemble_fast<6>(g0, gp, fill, count, out.data()); break;
      default: assemble_fast<7>(g0, gp, fill, count, out.data()); break;
    }
    return Status::ok();
  }

  // Big-endian: per-value loop, identical to the scalar reference.
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = (static_cast<std::uint64_t>(g0[2 * i]) << 56) |
                         (static_cast<std::uint64_t>(g0[2 * i + 1]) << 48);
    for (int g = 1; g < level; ++g) {
      bits |= static_cast<std::uint64_t>(gp[g][i]) << (8 * (6 - g));
    }
    bits |= fill;
    std::memcpy(&out[i], &bits, sizeof bits);
  }
  return Status::ok();
}

Result<std::vector<double>> assemble(
    std::span<const std::span<const std::uint8_t>> groups, int level,
    std::size_t count) {
  std::vector<double> out(count);
  MLOC_RETURN_IF_ERROR(assemble_into(groups, level, out));
  return out;
}

Result<std::vector<double>> assemble(const Shredded& shredded, int level) {
  std::array<std::span<const std::uint8_t>, kNumGroups> spans;
  for (int g = 0; g < kNumGroups; ++g) {
    spans[g] = shredded.groups[g];
  }
  return assemble(std::span<const std::span<const std::uint8_t>>(
                      spans.data(), spans.size()),
                  level, shredded.count);
}

void degrade_into(std::span<const double> values, int level,
                  std::span<double> out) {
  MLOC_CHECK(level >= 1 && level <= kNumGroups);
  MLOC_CHECK(out.size() == values.size());
  if (level == kNumGroups) {
    if (out.data() != values.data()) {
      std::memcpy(out.data(), values.data(), values.size() * sizeof(double));
    }
    return;
  }
  // Keeping the top level+1 bytes and OR-ing the midpoint fill is exactly
  // assemble(shred(values), level), skipping the byte planes entirely.
  const std::uint64_t keep = ~0ull << (8 * (kNumGroups - level));
  const std::uint64_t fill = fill_for_level(level);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof bits);
    bits = (bits & keep) | fill;
    std::memcpy(&out[i], &bits, sizeof bits);
  }
}

}  // namespace mloc::plod

namespace mloc::detail::scalar {

void plod_shred_into(std::span<const double> values,
                     const plod::PlaneSpans& planes) {
  using plod::kNumGroups;
  for (int g = 0; g < kNumGroups; ++g) {
    MLOC_CHECK(planes[g].size() ==
               values.size() * static_cast<std::size_t>(plod::group_bytes(g)));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof bits);
    // Big-endian byte order: byte 0 = sign/exponent-high.
    planes[0][2 * i] = static_cast<std::uint8_t>(bits >> 56);
    planes[0][2 * i + 1] = static_cast<std::uint8_t>(bits >> 48);
    for (int g = 1; g < kNumGroups; ++g) {
      planes[g][i] = static_cast<std::uint8_t>(bits >> (8 * (6 - g)));
    }
  }
}

Status plod_assemble_into(
    std::span<const std::span<const std::uint8_t>> groups, int level,
    std::span<double> out) {
  using plod::kNumGroups;
  if (level < 1 || level > kNumGroups) {
    return invalid_argument("PLoD level must be in [1,7]");
  }
  if (groups.size() < static_cast<std::size_t>(level)) {
    return invalid_argument("fewer byte groups than requested level");
  }
  const std::size_t count = out.size();
  for (int g = 0; g < level; ++g) {
    if (groups[g].size() !=
        count * static_cast<std::size_t>(plod::group_bytes(g))) {
      return corrupt_data("PLoD group size mismatches value count");
    }
  }

  std::uint64_t fill = 0;
  if (level < kNumGroups) {
    const int missing = kNumGroups - level;
    fill = 0x7Full << (8 * (missing - 1));
    for (int b = 0; b < missing - 1; ++b) {
      fill |= 0xFFull << (8 * b);
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    MLOC_DCHECK(2 * i + 1 < groups[0].size());
    std::uint64_t bits =
        (static_cast<std::uint64_t>(groups[0][2 * i]) << 56) |
        (static_cast<std::uint64_t>(groups[0][2 * i + 1]) << 48);
    for (int g = 1; g < level; ++g) {
      MLOC_DCHECK(i < groups[g].size());
      bits |= static_cast<std::uint64_t>(groups[g][i]) << (8 * (6 - g));
    }
    bits |= fill;
    std::memcpy(&out[i], &bits, sizeof bits);
  }
  return Status::ok();
}

}  // namespace mloc::detail::scalar
