// Precision-based Level of Detail (PLoD) — paper §III-B-3, Fig. 3.
//
// Every IEEE-754 double is split into 7 groups by byte significance:
//   group 0 — the two most-significant bytes (sign, exponent, top 4
//             mantissa bits): the minimum needed to approximate the value;
//   groups 1..6 — one additional mantissa byte each, descending
//             significance.
// Bytes of the same group across all values are stored contiguously, so
// reading PLoD level L (L in [1,7]) fetches only the first L groups
// (= L+1 bytes per value) — level 2 costs 3/8 of full-precision I/O.
//
// Reassembly fills the missing low-order bytes with 0x7F then 0xFF…, the
// midpoint of the unknown interval, instead of zeros (which would bias all
// magnitudes downward) — exactly the paper's §III-D-3 rule.
//
// Shred and assemble are 8×8 byte transposes at heart, and they sit on both
// the ingest encode path and the query reassembly path. The hot
// implementations below run cache-blocked (64 values per block, SWAR
// delta-swap transpose, plane-contiguous stores; DESIGN.md §11); the
// original per-value loops are retained under mloc::detail::scalar for A/B
// benchmarking and differential testing — outputs are byte-identical.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace mloc::plod {

/// Number of PLoD groups (level 7 = full precision).
inline constexpr int kNumGroups = 7;

/// Bytes per value contributed by group g (group 0 carries two bytes).
constexpr int group_bytes(int group) noexcept { return group == 0 ? 2 : 1; }

/// Total bytes per value fetched at PLoD level `level` (1..7).
constexpr int level_bytes(int level) noexcept { return level + 1; }

/// Upper bound on the point-wise relative error of level-`level` values
/// for normal (non-denormal, finite) doubles, given midpoint fill.
double level_max_relative_error(int level) noexcept;

/// Byte planes of a shredded buffer: planes[g] has group_bytes(g)*count
/// bytes. Within group 0 the two bytes of one value stay adjacent
/// (big-endian order: sign/exponent byte first).
struct Shredded {
  std::array<Bytes, kNumGroups> groups;
  std::size_t count = 0;
};

/// Caller-provided destination planes for shred_into; planes[g] must hold
/// exactly group_bytes(g) * count bytes.
using PlaneSpans = std::array<std::span<std::uint8_t>, kNumGroups>;

/// Shred values into caller-provided plane buffers — the allocation-free
/// core used by the ingest encode stage (one flat scratch buffer per
/// fragment instead of 7 vectors). Precondition: every planes[g] sized
/// group_bytes(g) * values.size().
void shred_into(std::span<const double> values, const PlaneSpans& planes);

/// Split values into PLoD byte groups (allocating convenience wrapper).
Shredded shred(std::span<const double> values);

/// Reassemble doubles from the first `level` groups into a caller-provided
/// buffer (out.size() == count). groups[g] must hold group_bytes(g) *
/// out.size() bytes for g < level.
Status assemble_into(std::span<const std::span<const std::uint8_t>> groups,
                     int level, std::span<double> out);

/// Reassemble doubles from the first `level` groups (level in [1,7]).
/// groups[g] must hold group_bytes(g)*count bytes for g < level.
Result<std::vector<double>> assemble(
    std::span<const std::span<const std::uint8_t>> groups, int level,
    std::size_t count);

/// Convenience: assemble from a Shredded at a given level.
Result<std::vector<double>> assemble(const Shredded& shredded, int level);

/// Degrade full-precision values to level-`level` precision in one pass:
/// out[i] == assemble(shred(values), level)[i] bit-for-bit, without the
/// intermediate byte planes. Used by the query engine when the fetch level
/// exceeds the requested level. `out.size()` must equal `values.size()`;
/// in-place (out == values) is allowed.
void degrade_into(std::span<const double> values, int level,
                  std::span<double> out);

}  // namespace mloc::plod

namespace mloc::detail::scalar {

/// Retained per-value reference implementations (the pre-optimization
/// loops). Semantics and output are byte-identical to the blocked versions
/// above; they exist for differential tests and bench_kernels A/B runs.
void plod_shred_into(std::span<const double> values,
                     const plod::PlaneSpans& planes);
Status plod_assemble_into(
    std::span<const std::span<const std::uint8_t>> groups, int level,
    std::span<double> out);

}  // namespace mloc::detail::scalar
