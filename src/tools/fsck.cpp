#include "tools/fsck.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "array/chunking.hpp"
#include "bitmap/bitmap.hpp"
#include "compress/registry.hpp"
#include "core/layout.hpp"
#include "core/store.hpp"
#include "index/hbx.hpp"
#include "plod/plod.hpp"
#include "sfc/hilbert.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace mloc::fsck {
namespace {

std::string u64str(std::uint64_t v) { return std::to_string(v); }

/// Issue sink with the max_issues cap applied once, centrally.
class Sink {
 public:
  Sink(Report* report, std::size_t max_issues)
      : report_(report), max_issues_(max_issues) {}

  void add(std::string check, std::string object, std::string detail) {
    if (report_->issues.size() >= max_issues_) {
      ++report_->suppressed_issues;
      return;
    }
    report_->issues.push_back(
        {std::move(check), std::move(object), std::move(detail)});
  }

 private:
  Report* report_;
  std::size_t max_issues_;
};

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Read a whole pfs file. No IoLog: fsck is an offline integrity scan, not
/// part of any modeled query.
Result<Bytes> read_all(const pfs::PfsStorage& fs, pfs::FileId id) {
  MLOC_ASSIGN_OR_RETURN(std::uint64_t size, fs.file_size(id));
  return fs.read(id, 0, size);
}

/// Everything the per-bin checks need about the enclosing store, resolved
/// per variable (each variable may carry its own layout).
struct StoreContext {
  const pfs::PfsStorage* fs = nullptr;
  const MlocStore* store = nullptr;
  const BinningScheme* scheme = nullptr;
  std::string var;
  const ChunkGrid* chunk_grid = nullptr;
  int num_groups = 1;
  LevelOrder order = LevelOrder::kVMS;
  sfc::CurveOrder curve;
  std::shared_ptr<const ByteCodec> byte_codec;      // PLoD mode
  std::shared_ptr<const DoubleCodec> double_codec;  // whole-value mode
  bool lossless = false;
  /// Per-chunk occupancy marks for the cross-bin bijectivity check.
  std::vector<std::vector<bool>> chunk_marks;
};

std::string bin_name(const StoreContext& ctx, int bin) {
  return ctx.var + ".bin" + std::to_string(bin);
}
std::string frag_name(const StoreContext& ctx, int bin, std::size_t f,
                      ChunkId chunk) {
  return bin_name(ctx, bin) + " frag " + std::to_string(f) + " (chunk " +
         std::to_string(chunk) + ")";
}

/// The recomputed curve must be a bijection lattice <-> ranks; a broken
/// permutation would scramble every subsequent order check, so verify it
/// first (a violation indicates a code bug, not data corruption).
void check_curve_permutation(const StoreContext& ctx, Sink& sink) {
  const std::uint32_t n = ctx.chunk_grid->num_chunks();
  if (ctx.curve.size() != n) {
    sink.add("order", ctx.var,
             "curve order has " + u64str(ctx.curve.size()) +
             " cells, chunk lattice has " + u64str(n));
    return;
  }
  std::vector<bool> seen(n, false);
  for (std::uint32_t r = 0; r < n; ++r) {
    const ChunkId id = ctx.curve.chunk_at(r);
    if (id >= n || seen[id]) {
      sink.add("order", ctx.var,
               "curve rank " + u64str(r) + " maps to invalid/duplicate chunk " +
               u64str(id));
      return;
    }
    seen[id] = true;
    if (ctx.curve.rank_of(id) != r) {
      sink.add("order", ctx.var,
               "rank_of(chunk_at(" + u64str(r) + ")) != " + u64str(r));
      return;
    }
  }
}

/// Decode one fragment's payload segments and validate plane sizes (and,
/// for lossless storage, that values obey the zone map and route back to
/// the bin holding them).
void check_fragment_payload(StoreContext& ctx, int bin,
                            const FragmentInfo& frag, std::size_t frag_no,
                            const Bytes& dat, std::uint64_t dat_payload,
                            Sink& sink) {
  const std::string name = frag_name(ctx, bin, frag_no, frag.chunk);
  std::vector<Bytes> planes;
  for (std::size_t g = 0; g < frag.groups.size(); ++g) {
    const Segment& seg = frag.groups[g];
    if (seg.offset + seg.length > dat_payload ||
        seg.offset + seg.length < seg.offset) {
      return;  // already reported by the segment-tiling check
    }
    const std::span<const std::uint8_t> raw =
        std::span<const std::uint8_t>(dat).subspan(seg.offset, seg.length);
    if (fnv1a64(raw) != seg.checksum) {
      sink.add("planes", name,
               "group " + u64str(g) + " segment failed FNV checksum");
      return;
    }
    if (ctx.byte_codec != nullptr) {
      auto plane = ctx.byte_codec->decode(raw);
      if (!plane.is_ok()) {
        sink.add("planes", name, "group " + u64str(g) + " decode failed: " +
                 plane.status().to_string());
        return;
      }
      const std::uint64_t want =
          frag.count *
          static_cast<std::uint64_t>(plod::group_bytes(static_cast<int>(g)));
      if (plane.value().size() != want) {
        sink.add("planes", name,
                 "group " + u64str(g) + " plane has " +
                 u64str(plane.value().size()) + " bytes, expected " +
                 u64str(want) + " (count " + u64str(frag.count) + ")");
        return;
      }
      planes.push_back(std::move(plane).value());
    }
  }

  std::vector<double> values;
  if (ctx.byte_codec != nullptr) {
    // Group count mismatches are reported under "table"; without the full
    // prefix there is nothing coherent to reassemble.
    if (static_cast<int>(planes.size()) != plod::kNumGroups) return;
    std::uint64_t total = 0;
    for (const auto& p : planes) total += p.size();
    if (total != frag.count * 8) {
      sink.add("planes", name, "plane bytes sum to " + u64str(total) +
               ", expected 8 x " + u64str(frag.count));
      return;
    }
    std::vector<std::span<const std::uint8_t>> spans(planes.begin(),
                                                     planes.end());
    auto assembled = plod::assemble(spans, plod::kNumGroups, frag.count);
    if (!assembled.is_ok()) {
      sink.add("planes", name,
               "reassembly failed: " + assembled.status().to_string());
      return;
    }
    values = std::move(assembled).value();
  } else {
    if (frag.groups.size() != 1) return;  // reported under "table"
    const Segment& seg = frag.groups[0];
    auto decoded = ctx.double_codec->decode(
        std::span<const std::uint8_t>(dat).subspan(seg.offset, seg.length));
    if (!decoded.is_ok()) {
      sink.add("planes", name,
               "value decode failed: " + decoded.status().to_string());
      return;
    }
    if (decoded.value().size() != frag.count) {
      sink.add("planes", name,
               "decoded " + u64str(decoded.value().size()) +
               " values, fragment table says " + u64str(frag.count));
      return;
    }
    values = std::move(decoded).value();
  }

  if (!ctx.lossless) return;  // lossy codecs may move values across bounds
  const int last_bin = ctx.scheme->num_bins() - 1;
  for (double v : values) {
    if (std::isnan(v)) {
      if (bin != last_bin) {
        sink.add("planes", name, "NaN stored outside the last bin");
        return;
      }
      continue;
    }
    if (v < frag.min_value || v > frag.max_value) {
      sink.add("planes", name,
               "value " + std::to_string(v) + " outside zone map [" +
               std::to_string(frag.min_value) + ", " +
               std::to_string(frag.max_value) + "]");
      return;
    }
    if (ctx.scheme->bin_of(v) != bin) {
      sink.add("bin-bounds", name,
               "value " + std::to_string(v) + " routes to bin " +
               std::to_string(ctx.scheme->bin_of(v)) + ", stored in bin " +
               std::to_string(bin));
      return;
    }
  }
}

void check_bin(StoreContext& ctx, int bin, const MlocStore::BinSubfiles& files,
               const Options& opts, Report& report, Sink& sink) {
  const std::string name = bin_name(ctx, bin);
  auto idx = read_all(*ctx.fs, files.idx);
  auto dat = read_all(*ctx.fs, files.dat);
  if (!idx.is_ok() || !dat.is_ok()) {
    sink.add("footer", name, "cannot read subfiles: " +
             (idx.is_ok() ? dat.status() : idx.status()).to_string());
    return;
  }

  // --- footer: whole-file CRC of both subfiles.
  report.subfiles_checked += 2;
  auto idx_payload = verify_subfile_footer(idx.value());
  if (!idx_payload.is_ok()) {
    sink.add("footer", name + ".idx", idx_payload.status().to_string());
    return;
  }
  auto dat_payload = verify_subfile_footer(dat.value());
  if (!dat_payload.is_ok()) {
    sink.add("footer", name + ".dat", dat_payload.status().to_string());
    return;
  }
  report.bytes_verified += idx.value().size() + dat.value().size();

  // --- table: the fragment table must decode and consume header_len
  // bytes exactly.
  if (files.header_len > idx_payload.value()) {
    sink.add("table", name, "header_len " + u64str(files.header_len) +
             " exceeds .idx payload of " + u64str(idx_payload.value()));
    return;
  }
  ByteReader header_reader(
      std::span<const std::uint8_t>(idx.value()).first(files.header_len));
  auto layout = BinLayout::deserialize(header_reader);
  if (!layout.is_ok()) {
    sink.add("table", name,
             "fragment table corrupt: " + layout.status().to_string());
    return;
  }
  if (!header_reader.exhausted()) {
    sink.add("table", name,
             "fragment table leaves " + u64str(header_reader.remaining()) +
             " trailing header bytes");
  }

  const auto& frags = layout.value().fragments;
  report.fragments_checked += frags.size();
  const std::uint32_t num_chunks = ctx.chunk_grid->num_chunks();
  const int want_groups = ctx.num_groups;
  const std::uint64_t blob_section = idx_payload.value() - files.header_len;

  // --- order: strictly increasing curve rank, each chunk at most once.
  for (std::size_t f = 0; f < frags.size(); ++f) {
    if (frags[f].chunk >= num_chunks) {
      sink.add("order", frag_name(ctx, bin, f, frags[f].chunk),
               "chunk id outside lattice of " + u64str(num_chunks));
      continue;
    }
    if (f > 0 && frags[f - 1].chunk < num_chunks &&
        ctx.curve.rank_of(frags[f].chunk) <=
            ctx.curve.rank_of(frags[f - 1].chunk)) {
      sink.add("order", frag_name(ctx, bin, f, frags[f].chunk),
               "curve rank " + u64str(ctx.curve.rank_of(frags[f].chunk)) +
               " not after predecessor's rank " +
               u64str(ctx.curve.rank_of(frags[f - 1].chunk)));
    }
  }

  // --- table: per-fragment shape invariants.
  for (std::size_t f = 0; f < frags.size(); ++f) {
    const FragmentInfo& frag = frags[f];
    const std::string fname = frag_name(ctx, bin, f, frag.chunk);
    if (static_cast<int>(frag.groups.size()) != want_groups) {
      sink.add("table", fname,
               u64str(frag.groups.size()) + " byte groups, store mode has " +
               std::to_string(want_groups));
    }
    if (frag.count == 0) {
      sink.add("table", fname, "empty fragment (count 0) was materialized");
    }
    if (frag.count > 0 && !std::isnan(frag.min_value) &&
        !std::isnan(frag.max_value) && frag.min_value > frag.max_value &&
        // An all-NaN fragment legitimately keeps inverted inf sentinels.
        !(std::isinf(frag.min_value) && std::isinf(frag.max_value))) {
      sink.add("table", fname,
               "zone map inverted: min " + std::to_string(frag.min_value) +
               " > max " + std::to_string(frag.max_value));
    }
  }

  // --- segments: positional blobs tile the .idx blob section exactly...
  std::uint64_t running = 0;
  for (std::size_t f = 0; f < frags.size(); ++f) {
    const Segment& pos = frags[f].positions;
    if (pos.offset != running) {
      sink.add("segments", frag_name(ctx, bin, f, frags[f].chunk),
               "position blob at offset " + u64str(pos.offset) +
               ", expected " + u64str(running));
      running = pos.offset;  // resync so one bad offset reports once
    }
    running += pos.length;
  }
  if (running != blob_section) {
    sink.add("segments", name,
             "position blobs cover " + u64str(running) + " bytes of a " +
             u64str(blob_section) + "-byte blob section");
  }

  // --- ...and payload segments tile the .dat payload in the configured
  // (M,S) emission order — this is the "correct prefix offsets" check.
  running = 0;
  const bool vms = ctx.order == LevelOrder::kVMS;
  const std::size_t outer =
      vms ? static_cast<std::size_t>(want_groups) : frags.size();
  const std::size_t inner =
      vms ? frags.size() : static_cast<std::size_t>(want_groups);
  bool segments_ok = true;
  for (std::size_t a = 0; a < outer && segments_ok; ++a) {
    for (std::size_t b = 0; b < inner && segments_ok; ++b) {
      const std::size_t f = vms ? b : a;
      const std::size_t g = vms ? a : b;
      if (f >= frags.size() || g >= frags[f].groups.size()) continue;
      const Segment& seg = frags[f].groups[g];
      if (seg.offset != running) {
        sink.add("segments", frag_name(ctx, bin, f, frags[f].chunk),
                 "group " + u64str(g) + " at offset " + u64str(seg.offset) +
                 ", expected " + u64str(running));
        segments_ok = false;
      }
      running += seg.length;
    }
  }
  if (segments_ok && running != dat_payload.value()) {
    sink.add("segments", name,
             "payload segments cover " + u64str(running) + " bytes of a " +
             u64str(dat_payload.value()) + "-byte .dat payload");
  }

  // --- positions: checksum, decode, range, and cross-bin occupancy.
  for (std::size_t f = 0; f < frags.size(); ++f) {
    const FragmentInfo& frag = frags[f];
    const std::string fname = frag_name(ctx, bin, f, frag.chunk);
    const Segment& pos = frag.positions;
    if (pos.offset + pos.length > blob_section ||
        pos.offset + pos.length < pos.offset) {
      sink.add("positions", fname,
               "blob extent [" + u64str(pos.offset) + ", +" +
               u64str(pos.length) + ") outside blob section of " +
               u64str(blob_section));
      continue;
    }
    const auto blob = std::span<const std::uint8_t>(idx.value())
                          .subspan(files.header_len + pos.offset, pos.length);
    if (fnv1a64(blob) != pos.checksum) {
      sink.add("positions", fname, "position blob failed FNV checksum");
      continue;
    }
    auto decoded = decode_positions(blob, frag.count);
    if (!decoded.is_ok()) {
      sink.add("positions", fname,
               "blob decode failed: " + decoded.status().to_string());
      continue;
    }
    if (frag.chunk >= num_chunks) continue;  // reported under "order"
    const std::uint64_t chunk_volume =
        ctx.chunk_grid->chunk_region(frag.chunk).volume();
    auto& marks = ctx.chunk_marks[frag.chunk];
    if (marks.empty()) marks.resize(chunk_volume, false);
    for (std::uint32_t off : decoded.value()) {
      if (off >= chunk_volume) {
        sink.add("positions", fname,
                 "local offset " + u64str(off) + " outside chunk volume " +
                 u64str(chunk_volume));
        break;
      }
      if (marks[off]) {
        sink.add("positions", fname,
                 "local offset " + u64str(off) +
                 " already claimed by another fragment of chunk " +
                 u64str(frag.chunk));
        break;
      }
      marks[off] = true;
    }
  }

  // --- planes: decode payloads (the expensive, optional pass).
  if (opts.decode_payloads) {
    for (std::size_t f = 0; f < frags.size(); ++f) {
      check_fragment_payload(ctx, bin, frags[f], f, dat.value(),
                             dat_payload.value(), sink);
    }
  }
}

std::string node_name(const std::string& hbx, std::size_t i,
                      const index::HbxNode& n) {
  return hbx + " node " + std::to_string(i) + " (level " +
         std::to_string(n.level) + ", bins [" + std::to_string(n.first_bin) +
         ".." + std::to_string(n.last_bin()) + "])";
}

/// Rebuild one bin's global position bitmap from its positional index —
/// the ground truth every .hbx leaf must reproduce. Returns false when the
/// bin's table or blobs are unreadable (already reported by check_bin).
bool rebuild_bin_bitmap(const StoreContext& ctx, const NDShape& shape,
                        const MlocStore::BinSubfiles& files, Bitmap& out) {
  auto idx = read_all(*ctx.fs, files.idx);
  if (!idx.is_ok()) return false;
  auto payload = verify_subfile_footer(idx.value());
  if (!payload.is_ok() || files.header_len > payload.value()) return false;
  ByteReader header_reader(
      std::span<const std::uint8_t>(idx.value()).first(files.header_len));
  auto layout = BinLayout::deserialize(header_reader);
  if (!layout.is_ok()) return false;
  const std::uint64_t blob_section = payload.value() - files.header_len;
  for (const FragmentInfo& frag : layout.value().fragments) {
    const Segment& pos = frag.positions;
    if (pos.offset + pos.length > blob_section ||
        pos.offset + pos.length < pos.offset ||
        frag.chunk >= ctx.chunk_grid->num_chunks()) {
      return false;
    }
    auto decoded = decode_positions(
        std::span<const std::uint8_t>(idx.value())
            .subspan(files.header_len + pos.offset, pos.length),
        frag.count);
    if (!decoded.is_ok()) return false;
    const Region region = ctx.chunk_grid->chunk_region(frag.chunk);
    Coord extents{};
    for (int d = 0; d < shape.ndims(); ++d) {
      extents[d] = region.hi(d) - region.lo(d);
    }
    const NDShape local(shape.ndims(), extents);
    for (std::uint32_t off : decoded.value()) {
      if (off >= local.volume()) return false;
      Coord c = local.delinearize(off);
      for (int d = 0; d < shape.ndims(); ++d) c[d] += region.lo(d);
      out.set(shape.linearize(c));
    }
  }
  return true;
}

/// The "index" family: hierarchical bitmap index consistency (.hbx).
void check_index(const StoreContext& ctx,
                 const std::vector<MlocStore::BinSubfiles>& bins,
                 VariableLayoutInfo& info, Report& report, Sink& sink) {
  auto sub = ctx.store->hbx_subfile(ctx.var);
  if (!sub.is_ok()) {
    sink.add("meta", ctx.var, sub.status().to_string());
    return;
  }
  if (!sub.value().present) return;
  info.hbx_present = true;
  const std::string name = ctx.var + ".hbx";
  auto raw = read_all(*ctx.fs, sub.value().file);
  if (!raw.is_ok()) {
    sink.add("footer", name,
             "cannot read subfile: " + raw.status().to_string());
    return;
  }
  ++report.subfiles_checked;
  info.hbx_bytes = raw.value().size();

  // --- footer: whole-file CRC (catches truncation and trailing damage).
  auto payload = verify_subfile_footer(raw.value());
  if (!payload.is_ok()) {
    sink.add("footer", name, payload.status().to_string());
    return;
  }
  report.bytes_verified += raw.value().size();

  const std::uint64_t header_len = sub.value().header_len;
  if (header_len > payload.value()) {
    sink.add("index", name,
             "header_len " + u64str(header_len) + " exceeds payload of " +
             u64str(payload.value()));
    return;
  }
  auto header = index::HbxHeader::deserialize(
      std::span<const std::uint8_t>(raw.value()).first(header_len));
  if (!header.is_ok()) {
    sink.add("index", name,
             "node table corrupt: " + header.status().to_string());
    return;
  }
  const index::HbxHeader& h = header.value();
  info.hbx_levels = h.num_levels();
  info.hbx_nodes = h.nodes.size();
  const NDShape& shape = ctx.store->config().shape;
  if (h.num_bins != ctx.scheme->num_bins() || h.nbits != shape.volume()) {
    sink.add("index", name,
             "node table for " + std::to_string(h.num_bins) + " bins x " +
             u64str(h.nbits) + " bits, store has " +
             std::to_string(ctx.scheme->num_bins()) + " bins x " +
             u64str(shape.volume()));
    return;
  }

  // --- every node bitmap: extent, checksum, decode, width, popcount.
  const std::uint64_t payload_section = payload.value() - header_len;
  std::vector<WahBitmap> node_bm(h.nodes.size());
  std::vector<bool> node_ok(h.nodes.size(), false);
  for (std::size_t i = 0; i < h.nodes.size(); ++i) {
    const index::HbxNode& n = h.nodes[i];
    if (n.offset + n.length > payload_section ||
        n.offset + n.length < n.offset) {
      sink.add("index", node_name(name, i, n),
               "payload extent [" + u64str(n.offset) + ", +" +
               u64str(n.length) + ") outside payload section of " +
               u64str(payload_section));
      continue;
    }
    const auto seg = std::span<const std::uint8_t>(raw.value())
                         .subspan(header_len + n.offset, n.length);
    if (fnv1a64(seg) != n.checksum) {
      sink.add("index", node_name(name, i, n),
               "node bitmap failed FNV checksum");
      continue;
    }
    ByteReader r(seg);
    auto bm = WahBitmap::deserialize(r);
    if (!bm.is_ok()) {
      sink.add("index", node_name(name, i, n),
               "bitmap decode failed: " + bm.status().to_string());
      continue;
    }
    if (bm.value().size_bits() != h.nbits) {
      sink.add("index", node_name(name, i, n),
               "bitmap spans " + u64str(bm.value().size_bits()) +
               " bits, grid has " + u64str(h.nbits));
      continue;
    }
    if (bm.value().count() != n.popcount) {
      sink.add("index", node_name(name, i, n),
               "bitmap popcount " + u64str(bm.value().count()) +
               ", node table says " + u64str(n.popcount));
      continue;
    }
    node_bm[i] = std::move(bm).value();
    node_ok[i] = true;
  }

  // --- aggregation: every level-k node equals the OR of its children.
  for (int k = 1; k < h.num_levels(); ++k) {
    const auto children = h.level(k - 1);
    const std::size_t child_base = h.level_begin[static_cast<std::size_t>(k - 1)];
    for (std::size_t j = 0; j < h.level(k).size(); ++j) {
      const std::size_t i = h.level_begin[static_cast<std::size_t>(k)] + j;
      const index::HbxNode& n = h.nodes[i];
      if (!node_ok[i]) continue;
      WahBitmap agg;
      bool all_ok = true;
      for (std::size_t c = 0; c < children.size(); ++c) {
        if (children[c].first_bin < n.first_bin ||
            children[c].last_bin() > n.last_bin()) {
          continue;
        }
        if (!node_ok[child_base + c]) {
          all_ok = false;
          break;
        }
        const WahBitmap& cb = node_bm[child_base + c];
        agg = agg.size_bits() == 0 ? cb : WahBitmap::logical_or(agg, cb);
      }
      if (!all_ok) continue;  // children already reported
      if (!(agg == node_bm[i])) {
        sink.add("index", node_name(name, i, n),
                 "aggregate bitmap is not the OR of its level-" +
                 std::to_string(k - 1) + " children");
      }
    }
  }

  // --- leaves: leaf b must equal the union of bin b's positional-index
  // entries mapped to global grid offsets (ground truth from .idx).
  for (int b = 0; b < h.num_bins && b < static_cast<int>(bins.size()); ++b) {
    const std::size_t i = static_cast<std::size_t>(b);  // leaf node id == bin
    if (!node_ok[i]) continue;
    Bitmap truth(shape.volume());
    if (!rebuild_bin_bitmap(ctx, shape, bins[i], truth)) continue;
    if (!(WahBitmap::compress(truth) == node_bm[i])) {
      sink.add("index", node_name(name, i, h.nodes[i]),
               "leaf bitmap disagrees with bin " + std::to_string(b) +
               "'s positional index");
    }
  }
}

}  // namespace

std::string Report::human() const {
  std::string out = "fsck " + store + ": ";
  if (ok()) {
    out += "clean (" + u64str(variables_checked) + " variables, " +
           u64str(subfiles_checked) + " subfiles, " +
           u64str(fragments_checked) + " fragments, " +
           u64str(bytes_verified) + " bytes verified)\n";
    return out;
  }
  out += u64str(issues.size() + suppressed_issues) + " issue(s)\n";
  for (const auto& i : issues) {
    out += "  [" + i.check + "] " + i.object + ": " + i.detail + "\n";
  }
  if (suppressed_issues > 0) {
    out += "  ... and " + u64str(suppressed_issues) + " more\n";
  }
  return out;
}

std::string Report::json() const {
  std::string out = "{\"store\":\"" + json_escape(store) + "\",";
  out += "\"ok\":" + std::string(ok() ? "true" : "false") + ",";
  out += "\"variables_checked\":" + u64str(variables_checked) + ",";
  out += "\"subfiles_checked\":" + u64str(subfiles_checked) + ",";
  out += "\"fragments_checked\":" + u64str(fragments_checked) + ",";
  out += "\"bytes_verified\":" + u64str(bytes_verified) + ",";
  out += "\"suppressed_issues\":" + u64str(suppressed_issues) + ",";
  out += "\"variables\":[";
  for (std::size_t i = 0; i < variable_layouts.size(); ++i) {
    const VariableLayoutInfo& v = variable_layouts[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + json_escape(v.name) + "\",";
    out += "\"layout\":{";
    out += "\"order\":\"" + json_escape(v.order) + "\",";
    out += "\"curve\":\"" + json_escape(v.curve) + "\",";
    out += "\"interleave\":\"" + json_escape(v.interleave) + "\",";
    out += "\"codec\":\"" + json_escape(v.codec) + "\",";
    out += "\"chunk_shape\":\"" + json_escape(v.chunk_shape) + "\",";
    out += "\"num_bins\":" + std::to_string(v.num_bins) + ",";
    out += "\"index_fanout\":" + std::to_string(v.index_fanout) + ",";
    out += "\"plod_capable\":" + std::string(v.plod_capable ? "true" : "false");
    out += "},";
    out += "\"hbx\":{";
    out += "\"present\":" + std::string(v.hbx_present ? "true" : "false") + ",";
    out += "\"levels\":" + std::to_string(v.hbx_levels) + ",";
    out += "\"nodes\":" + u64str(v.hbx_nodes) + ",";
    out += "\"bytes\":" + u64str(v.hbx_bytes);
    out += "}}";
  }
  out += "],";
  out += "\"issues\":[";
  for (std::size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"check\":\"" + json_escape(issues[i].check) + "\",";
    out += "\"object\":\"" + json_escape(issues[i].object) + "\",";
    out += "\"detail\":\"" + json_escape(issues[i].detail) + "\"}";
  }
  out += "]}";
  return out;
}

LayoutVerifier::LayoutVerifier(pfs::PfsStorage* fs, Options opts)
    : fs_(fs), opts_(opts) {
  MLOC_CHECK(fs != nullptr);
}

std::vector<std::string> LayoutVerifier::discover_stores() const {
  std::vector<std::string> out;
  constexpr std::string_view kSuffix = ".meta";
  for (const auto& [name, size] : fs_->listing()) {
    (void)size;
    if (name.size() > kSuffix.size() && name.ends_with(kSuffix)) {
      out.push_back(name.substr(0, name.size() - kSuffix.size()));
    }
  }
  return out;
}

Report LayoutVerifier::verify_store(const std::string& name) const {
  Report report;
  report.store = name;
  Sink sink(&report, opts_.max_issues);

  // Opening runs the meta-footer CRC and every metadata decode check; any
  // failure there is the first invariant violation.
  auto opened = MlocStore::open(fs_, name);
  if (!opened.is_ok()) {
    sink.add("meta", name + ".meta", opened.status().to_string());
    return report;
  }
  const MlocStore& store = opened.value();
  ++report.subfiles_checked;  // the .meta file open() just CRC-verified
  if (auto meta_id = fs_->open(name + ".meta"); meta_id.is_ok()) {
    if (auto sz = fs_->file_size(meta_id.value()); sz.is_ok()) {
      report.bytes_verified += sz.value();
    }
  }

  for (const auto& var : store.variables()) {
    ++report.variables_checked;
    auto scheme = store.binning(var);
    if (!scheme.is_ok()) {
      sink.add("meta", var, scheme.status().to_string());
      continue;
    }
    auto desc = store.describe(var);
    auto grid = store.chunk_grid(var);
    if (!desc.is_ok() || !grid.is_ok()) {
      sink.add("meta", var,
               (desc.is_ok() ? grid.status() : desc.status()).to_string());
      continue;
    }
    const VariableLayout& layout = desc.value().layout;
    VariableLayoutInfo info;
    info.name = var;
    info.order = std::string(level_order_name(layout.order));
    info.curve = std::string(sfc::curve_kind_name(layout.curve));
    info.interleave = layout.interleave;
    info.codec = layout.codec;
    info.chunk_shape = layout.chunk_shape.to_string();
    info.num_bins = layout.num_bins;
    info.plod_capable = desc.value().plod_capable;
    info.index_fanout = layout.index_fanout;
    report.variable_layouts.push_back(std::move(info));

    // Codecs and the reference curve are re-resolved per variable from its
    // recorded layout — a layout naming an unknown codec or an interleave
    // that no longer validates is itself an invariant violation.
    StoreContext ctx;
    ctx.fs = fs_;
    ctx.store = &store;
    ctx.scheme = scheme.value();
    ctx.var = var;
    ctx.chunk_grid = grid.value();
    ctx.num_groups = desc.value().num_groups;
    ctx.order = layout.order;
    if (desc.value().plod_capable) {
      auto c = make_byte_codec(layout.codec);
      if (!c.is_ok()) {
        sink.add("meta", var, "unknown byte codec " + layout.codec);
        continue;
      }
      ctx.byte_codec = std::move(c).value();
      ctx.lossless = true;  // byte-plane storage is exact by construction
    } else {
      auto c = make_double_codec(layout.codec);
      if (!c.is_ok()) {
        sink.add("meta", var, "unknown codec " + layout.codec);
        continue;
      }
      ctx.double_codec = std::move(c).value();
      ctx.lossless = ctx.double_codec->lossless();
    }
    auto curve = make_curve_order(layout, ctx.chunk_grid->lattice_shape());
    if (!curve.is_ok()) {
      sink.add("order", var,
               "cannot rebuild curve order: " + curve.status().to_string());
      continue;
    }
    ctx.curve = std::move(curve).value();
    ctx.chunk_marks.resize(ctx.chunk_grid->num_chunks());

    check_curve_permutation(ctx, sink);

    // --- bin-bounds: strictly increasing interior boundaries covering the
    // whole real line. BinningScheme::deserialize re-validates monotonicity
    // on open, so a violation here means in-memory construction broke.
    const BinningScheme& bs = *ctx.scheme;
    for (int b = 0; b + 1 < bs.num_bins(); ++b) {
      if (bs.upper(b) != bs.lower(b + 1)) {
        sink.add("bin-bounds", var + ".bin" + std::to_string(b),
                 "bin intervals not contiguous at boundary " +
                 std::to_string(b));
      }
      if (b + 2 < bs.num_bins() && !(bs.upper(b) < bs.upper(b + 1))) {
        sink.add("bin-bounds", var + ".bin" + std::to_string(b),
                 "boundaries not strictly increasing");
      }
    }
    if (!std::isinf(bs.lower(0)) || !std::isinf(bs.upper(bs.num_bins() - 1))) {
      sink.add("bin-bounds", var, "extreme bins do not cover +/-inf");
    }

    auto bins = store.bin_subfiles(var);
    if (!bins.is_ok()) {
      sink.add("meta", var, bins.status().to_string());
      continue;
    }
    if (static_cast<int>(bins.value().size()) != bs.num_bins()) {
      sink.add("bin-bounds", var,
               u64str(bins.value().size()) +
               " bin subfile pairs, scheme has " +
               std::to_string(bs.num_bins()) + " bins");
      continue;
    }

    for (int b = 0; b < static_cast<int>(bins.value().size()); ++b) {
      check_bin(ctx, b, bins.value()[b], opts_, report, sink);
    }

    // --- index: hierarchical bitmap index consistency (.hbx), when the
    // variable carries one.
    check_index(ctx, bins.value(), report.variable_layouts.back(), report,
                sink);

    // --- positions: cross-bin bijectivity — every cell of every chunk
    // claimed exactly once across all bins (duplicates were reported
    // in-bin as they were found).
    for (ChunkId c = 0; c < ctx.chunk_grid->num_chunks(); ++c) {
      const std::uint64_t chunk_volume =
          ctx.chunk_grid->chunk_region(c).volume();
      const auto& marks = ctx.chunk_marks[c];
      std::uint64_t covered = 0;
      for (bool m : marks) covered += m ? 1 : 0;
      if (covered != chunk_volume) {
        sink.add("positions", var + " chunk " + u64str(c),
                 u64str(covered) + " of " + u64str(chunk_volume) +
                 " cells claimed by positional indexes");
      }
    }
  }
  return report;
}

}  // namespace mloc::fsck
