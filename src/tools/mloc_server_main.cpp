// mloc_server — serve an on-disk MLOC store over the wire protocol.
//
//   mloc_server --store DIR [--host H] [--port P] [--loops N]
//               [--workers N] [--queue-depth N] [--cache-mb MB]
//               [--grace SECONDS] [--port-file PATH]
//               [--no-shm] [--max-shm-ring-mb MB]
//
// Shared memory: co-located clients may negotiate a per-connection shm
// ring for response payloads (they request it; --no-shm refuses all
// offers, --max-shm-ring-mb clamps the per-connection ring size).
//
// Binds (ephemeral port by default), prints "mloc_server listening on
// HOST:PORT", and serves until SIGINT/SIGTERM. On a signal it stops
// accepting, drains in-flight queries up to --grace seconds, closes
// sessions, and exits 0 — so an orchestrator's TERM always produces a
// clean stop. --port-file writes the bound port to a file, which is how
// scripts using an ephemeral port discover it.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "net/server.hpp"
#include "pfs/pfs.hpp"
#include "service/query_service.hpp"

using namespace mloc;

namespace {

// Signal handlers may only touch async-signal-safe state: write one byte
// to a self-pipe and let main() do the real shutdown.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

struct Args {
  std::map<std::string, std::string> options;
  std::set<std::string> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has_flag(const std::string& key) const {
    return flags.count(key) != 0;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.flags.insert(token);
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mloc_server --store DIR [--host H] [--port P]\n"
      "       [--loops N] [--workers N] [--queue-depth N]\n"
      "       [--cache-mb MB] [--grace SECONDS] [--port-file PATH]\n"
      "       [--no-shm] [--max-shm-ring-mb MB]\n"
      "  --no-shm              refuse shared-memory transport offers;\n"
      "                        co-located clients stay on TCP\n"
      "  --max-shm-ring-mb MB  clamp per-connection shm ring size\n"
      "                        (default 64)\n");
  return 2;
}

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const std::string dir = args.get("store");
  if (dir.empty()) return usage();

  // The store borrows the storage; keep both alive for the process.
  auto fs = pfs::PfsStorage::load_from_dir(dir);
  if (!fs.is_ok()) return fail(fs.status());
  auto opened = MlocStore::open(&fs.value(), "store");
  if (!opened.is_ok()) return fail(opened.status());

  service::ServiceConfig svc_cfg;
  svc_cfg.num_workers = std::atoi(args.get("workers", "4").c_str());
  svc_cfg.max_queue_depth = static_cast<std::size_t>(
      std::atoll(args.get("queue-depth", "1024").c_str()));
  svc_cfg.cache.budget_bytes =
      static_cast<std::uint64_t>(std::atoll(args.get("cache-mb", "64").c_str()))
      << 20;
  service::QueryService svc(std::move(opened).value(), svc_cfg);

  net::ServerConfig srv_cfg;
  srv_cfg.host = args.get("host", "127.0.0.1");
  srv_cfg.port = static_cast<std::uint16_t>(std::atoi(args.get("port", "0").c_str()));
  srv_cfg.num_loops = std::atoi(args.get("loops", "2").c_str());
  srv_cfg.drain_grace_s = std::atof(args.get("grace", "5").c_str());
  srv_cfg.enable_shm = !args.has_flag("no-shm");
  srv_cfg.max_shm_ring_bytes =
      static_cast<std::uint64_t>(
          std::atoll(args.get("max-shm-ring-mb", "64").c_str()))
      << 20;
  net::Server server(svc, srv_cfg);
  if (Status st = server.start(); !st.is_ok()) return fail(st);

  std::printf("mloc_server listening on %s:%u\n", srv_cfg.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (const std::string port_file = args.get("port-file");
      !port_file.empty()) {
    if (FILE* f = std::fopen(port_file.c_str(), "w"); f != nullptr) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  if (::pipe(g_signal_pipe) != 0) return fail(io_error("pipe failed"));
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::printf("mloc_server draining (grace %.1fs)\n", srv_cfg.drain_grace_s);
  std::fflush(stdout);
  server.shutdown();

  const net::ServerStats st = server.stats();
  std::printf(
      "mloc_server stopped: %llu connections, %llu frames in, %llu frames "
      "out, %llu protocol errors, %llu responses dropped, %llu shm / %llu "
      "tcp responses\n",
      static_cast<unsigned long long>(st.connections_accepted),
      static_cast<unsigned long long>(st.frames_received),
      static_cast<unsigned long long>(st.frames_sent),
      static_cast<unsigned long long>(st.protocol_errors),
      static_cast<unsigned long long>(st.responses_dropped),
      static_cast<unsigned long long>(st.responses_shm),
      static_cast<unsigned long long>(st.responses_tcp));
  return 0;
}
