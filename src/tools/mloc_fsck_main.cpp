// mloc_fsck — offline layout-invariant checker (CLI half).
//
// Usage:
//   mloc_fsck [--json] [--no-decode] [--max-issues N] <dir> [store...]
//
// Loads the PFS image saved under <dir> (the directory written by
// PfsStorage::save_to_dir / the mloc_cli "build" step), then verifies every
// on-disk invariant of the named stores (all discovered stores when none are
// named). Human report on stdout by default; --json emits one JSON object
// per store for CI consumption.
//
// Exit codes: 0 all stores clean, 1 invariant violations found, 2 bad
// usage or unreadable input.
#include <cstdio>
#include <string>
#include <vector>

#include "pfs/pfs.hpp"
#include "tools/fsck.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mloc_fsck [--json] [--no-decode] [--max-issues N] "
               "<dir> [store...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  mloc::fsck::Options opts;
  std::string dir;
  std::vector<std::string> stores;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-decode") {
      opts.decode_payloads = false;
    } else if (arg == "--max-issues") {
      if (i + 1 >= argc) return usage();
      opts.max_issues = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg.starts_with("--")) {
      return usage();
    } else if (dir.empty()) {
      dir = arg;
    } else {
      stores.push_back(arg);
    }
  }
  if (dir.empty()) return usage();

  auto loaded = mloc::pfs::PfsStorage::load_from_dir(dir);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "mloc_fsck: %s\n",
                 loaded.status().to_string().c_str());
    return 2;
  }
  mloc::pfs::PfsStorage fs = std::move(loaded).value();

  mloc::fsck::LayoutVerifier verifier(&fs, opts);
  if (stores.empty()) stores = verifier.discover_stores();
  if (stores.empty()) {
    std::fprintf(stderr, "mloc_fsck: no MLOC stores found in %s\n",
                 dir.c_str());
    return 2;
  }

  bool all_ok = true;
  for (const auto& name : stores) {
    const mloc::fsck::Report report = verifier.verify_store(name);
    all_ok = all_ok && report.ok();
    const std::string rendered = json ? report.json() + "\n" : report.human();
    std::fputs(rendered.c_str(), stdout);
  }
  return all_ok ? 0 : 1;
}
