// mloc_tune — layout autotuner CLI.
//
// Usage:
//   mloc_tune [--store NAME] [--var NAME]... [--seed N] [--restarts N]
//             [--rounds N] [--samples N] <dir> <trace.json>
//
// Loads the PFS image under <dir> (written by PfsStorage::save_to_dir),
// opens the named store (the single discovered store when --store is
// omitted), replays the recorded QueryTrace through the planner oracle for
// every traced variable (or just the --var ones), and prints the JSON
// tuning report on stdout:
//
//   {"results":[{"var":...,"predicted_cost_default":...,
//                "predicted_cost_tuned":...,"baseline":{...},
//                "recommended":{...}}]}
//
// Exit codes: 0 report produced, 2 bad usage or unreadable input.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pfs/pfs.hpp"
#include "tools/fsck.hpp"
#include "tune/tuner.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mloc_tune [--store NAME] [--var NAME]... [--seed N] "
               "[--restarts N] [--rounds N] [--samples N] <dir> "
               "<trace.json>\n");
  return 2;
}

int fail(const mloc::Status& st) {
  std::fprintf(stderr, "mloc_tune: %s\n", st.to_string().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_name;
  std::vector<std::string> only_vars;
  mloc::tune::SearchSpace space;
  std::string dir, trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--store") {
      const char* v = next();
      if (v == nullptr) return usage();
      store_name = v;
    } else if (arg == "--var") {
      const char* v = next();
      if (v == nullptr) return usage();
      only_vars.emplace_back(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      space.seed = std::stoull(v);
    } else if (arg == "--restarts") {
      const char* v = next();
      if (v == nullptr) return usage();
      space.random_restarts = std::stoi(v);
    } else if (arg == "--rounds") {
      const char* v = next();
      if (v == nullptr) return usage();
      space.max_rounds = std::stoi(v);
    } else if (arg == "--samples") {
      const char* v = next();
      if (v == nullptr) return usage();
      space.interleave_samples = std::stoi(v);
    } else if (arg.starts_with("--")) {
      return usage();
    } else if (dir.empty()) {
      dir = arg;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage();
    }
  }
  if (dir.empty() || trace_path.empty()) return usage();

  auto loaded = mloc::pfs::PfsStorage::load_from_dir(dir);
  if (!loaded.is_ok()) return fail(loaded.status());
  mloc::pfs::PfsStorage fs = std::move(loaded).value();

  if (store_name.empty()) {
    const auto stores =
        mloc::fsck::LayoutVerifier(&fs, {}).discover_stores();
    if (stores.size() != 1) {
      std::fprintf(stderr,
                   "mloc_tune: %zu stores in %s; pick one with --store\n",
                   stores.size(), dir.c_str());
      return 2;
    }
    store_name = stores.front();
  }
  auto opened = mloc::MlocStore::open(&fs, store_name);
  if (!opened.is_ok()) return fail(opened.status());
  mloc::MlocStore store = std::move(opened).value();

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "mloc_tune: cannot read %s\n", trace_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto trace = mloc::tune::QueryTrace::from_json(buf.str());
  if (!trace.is_ok()) return fail(trace.status());

  // Default to every traced variable, in first-appearance order.
  std::vector<std::string> vars = only_vars;
  if (vars.empty()) {
    for (const auto& tq : trace.value().queries) {
      if (std::find(vars.begin(), vars.end(), tq.var) == vars.end()) {
        vars.push_back(tq.var);
      }
    }
  }

  std::vector<mloc::tune::TuneResult> results;
  for (const auto& var : vars) {
    auto tuned =
        mloc::tune::tune_variable(store, var, trace.value(), space);
    if (!tuned.is_ok()) return fail(tuned.status());
    results.push_back(std::move(tuned).value());
  }
  std::fputs(mloc::tune::tune_report_json(results).c_str(), stdout);
  return 0;
}
