// mloc_client — command-line client for a running mloc_server.
//
//   mloc_client ping  --port P [--host H]
//   mloc_client query --port P [--host H] [--var NAME] [--vc LO:HI]
//               [--sc LO:HI[,LO:HI...]] [--plod L] [--ranks R]
//               [--region-only] [--select VAR:LO:HI ...] [--combine and|or]
//               [--fetch VAR] [--deadline S] [--repeat N]
//               [--shm | --no-shm] [--shm-ring-kb KB]
//   mloc_client stats --port P [--host H]
//   mloc_client session-stats --port P [--host H]
//   mloc_client vars  --port P [--host H]
//
// `query` opens a session, runs the request (pipelined --repeat times),
// and prints the result summary the way mloc_cli does, plus the serving
// stats that only exist behind the service (queue wait, cache hits).
// Multi-variable selection: repeat --select VAR:LO:HI per predicate;
// --fetch retrieves a variable's values at the surviving positions.
//
// Shared memory: by default `query` offers the server the shm fast path
// (net/shm.hpp) and silently stays on TCP if the server refuses —
// --no-shm skips the offer, --shm makes a refusal fatal (for scripts
// that must assert the fast path), --shm-ring-kb sizes the ring
// (default 4096).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "service/query_service.hpp"

using namespace mloc;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::pair<std::string, std::string>> repeated;  ///< --select
  std::vector<std::string> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has_flag(const std::string& name) const {
    return std::find(flags.begin(), flags.end(), name) != flags.end();
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      std::string value = argv[++i];
      if (token == "select") {
        args.repeated.emplace_back(token, std::move(value));
      } else {
        args.options[token] = std::move(value);
      }
    } else {
      args.flags.push_back(token);
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mloc_client ping  --port P [--host H]\n"
      "  mloc_client query --port P [--host H] [--var NAME] [--vc LO:HI]\n"
      "              [--sc LO:HI[,LO:HI...]] [--plod L] [--ranks R]\n"
      "              [--region-only] [--select VAR:LO:HI ...]\n"
      "              [--combine and|or] [--fetch VAR] [--deadline S]\n"
      "              [--repeat N] [--shm | --no-shm] [--shm-ring-kb KB]\n"
      "      --shm          require the shared-memory fast path (a server\n"
      "                     refusal is fatal); default is best-effort\n"
      "      --no-shm       stay on TCP, skip the shm offer entirely\n"
      "      --shm-ring-kb  response ring size in KiB (default 4096)\n"
      "  mloc_client stats --port P [--host H]\n"
      "  mloc_client session-stats --port P [--host H]\n"
      "  mloc_client vars  --port P [--host H]\n");
  return 2;
}

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

bool parse_range(const std::string& text, double* lo, double* hi) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  *lo = std::atof(text.substr(0, colon).c_str());
  *hi = std::atof(text.substr(colon + 1).c_str());
  return true;
}

Result<service::Request> parse_request(const Args& args) {
  service::Request req;
  req.var = args.get("var", "v");
  if (const std::string vc = args.get("vc"); !vc.empty()) {
    double lo = 0, hi = 0;
    if (!parse_range(vc, &lo, &hi)) {
      return invalid_argument("--vc expects LO:HI");
    }
    req.query.vc = ValueConstraint{lo, hi};
  }
  if (const std::string sc = args.get("sc"); !sc.empty()) {
    Coord lo{}, hi{};
    int dim = 0;
    std::size_t begin = 0;
    while (begin <= sc.size() && dim < NDShape::kMaxDims) {
      const std::size_t comma = sc.find(',', begin);
      const std::string part = sc.substr(
          begin,
          comma == std::string::npos ? std::string::npos : comma - begin);
      double dlo = 0, dhi = 0;
      if (!parse_range(part, &dlo, &dhi)) {
        return invalid_argument("--sc expects LO:HI[,LO:HI...]");
      }
      lo[dim] = static_cast<std::uint32_t>(dlo);
      hi[dim] = static_cast<std::uint32_t>(dhi);
      ++dim;
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    req.query.sc = Region(dim, lo, hi);
  }
  req.query.plod_level = std::atoi(args.get("plod", "7").c_str());
  req.query.values_needed = !args.has_flag("region-only");
  req.num_ranks = std::atoi(args.get("ranks", "0").c_str());
  req.deadline_s = std::atof(args.get("deadline", "-1").c_str());

  if (!args.repeated.empty()) {
    service::MultivarSpec mv;
    for (const auto& [key, value] : args.repeated) {
      const auto c1 = value.find(':');
      const auto c2 = c1 == std::string::npos ? std::string::npos
                                              : value.find(':', c1 + 1);
      if (c2 == std::string::npos) {
        return invalid_argument("--select expects VAR:LO:HI");
      }
      MlocStore::VarConstraint pred;
      pred.var = value.substr(0, c1);
      pred.vc.lo = std::atof(value.substr(c1 + 1, c2 - c1 - 1).c_str());
      pred.vc.hi = std::atof(value.substr(c2 + 1).c_str());
      mv.preds.push_back(std::move(pred));
    }
    mv.combine = args.get("combine", "and") == "or" ? MlocStore::Combine::kOr
                                                    : MlocStore::Combine::kAnd;
    mv.fetch_var = args.get("fetch");
    req.multivar = std::move(mv);
  }
  return req;
}

Status connect(const Args& args, net::Client* client) {
  const std::string port = args.get("port");
  if (port.empty()) return invalid_argument("--port is required");
  return client->connect(args.get("host", "127.0.0.1"),
                         static_cast<std::uint16_t>(std::atoi(port.c_str())));
}

void print_response(const service::Response& resp) {
  if (!resp.status.is_ok()) {
    std::printf("query failed: %s\n", resp.status.to_string().c_str());
    return;
  }
  const QueryResult& r = resp.result;
  std::printf(
      "%zu qualifying points; %llu bins touched (%llu aligned), %.2f MB "
      "read\n",
      r.positions.size(), static_cast<unsigned long long>(r.bins_touched),
      static_cast<unsigned long long>(r.aligned_bins),
      static_cast<double>(r.bytes_read) / 1e6);
  if (!r.values.empty()) {
    double sum = 0, mn = r.values[0], mx = mn;
    for (double v : r.values) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    std::printf("values: mean %.6g, min %.6g, max %.6g\n",
                sum / static_cast<double>(r.values.size()), mn, mx);
  }
  std::printf(
      "serving: queue %.3f ms, exec %.3f ms, cache %llu hits / %llu "
      "misses, via %s\n",
      resp.stats.queue_wait_s * 1e3, resp.stats.exec_wall_s * 1e3,
      static_cast<unsigned long long>(resp.stats.cache.hits),
      static_cast<unsigned long long>(resp.stats.cache.misses),
      resp.stats.via_shm ? "shm" : "tcp");
}

int cmd_ping(const Args& args) {
  net::Client c;
  if (Status st = connect(args, &c); !st.is_ok()) return fail(st);
  if (Status st = c.ping(); !st.is_ok()) return fail(st);
  std::printf("pong\n");
  return 0;
}

int cmd_query(const Args& args) {
  auto parsed = parse_request(args);
  if (!parsed.is_ok()) return fail(parsed.status());
  net::Client c;
  if (Status st = connect(args, &c); !st.is_ok()) return fail(st);
  if (auto sid = c.open_session("mloc_client"); !sid.is_ok()) {
    return fail(sid.status());
  }
  if (!args.has_flag("no-shm")) {
    const std::uint64_t ring_kb = static_cast<std::uint64_t>(
        std::atoll(args.get("shm-ring-kb", "4096").c_str()));
    const Status st = c.enable_shm(ring_kb << 10);
    // Best-effort by default: a refused offer just keeps TCP. --shm is
    // for scripts that need to *assert* the fast path.
    if (!st.is_ok() && args.has_flag("shm")) return fail(st);
  }

  const int repeat = std::max(1, std::atoi(args.get("repeat", "1").c_str()));
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(repeat));
  for (int i = 0; i < repeat; ++i) {
    auto id = c.send_query(parsed.value());
    if (!id.is_ok()) return fail(id.status());
    ids.push_back(id.value());
  }
  int rc = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto resp = c.wait(ids[i]);
    if (!resp.is_ok()) return fail(resp.status());
    if (ids.size() > 1) std::printf("-- response %zu --\n", i + 1);
    print_response(resp.value());
    if (!resp.value().status.is_ok()) rc = 1;
  }
  (void)c.close_session();
  return rc;
}

int cmd_stats(const Args& args) {
  net::Client c;
  if (Status st = connect(args, &c); !st.is_ok()) return fail(st);
  auto snap = c.stats();
  if (!snap.is_ok()) return fail(snap.status());
  const service::AggregateStats& a = snap.value().agg;
  const service::FragmentCache::Stats& fc = snap.value().cache;
  std::printf("service:\n");
  std::printf("  submitted   %llu (completed %llu, failed %llu, expired %llu,"
              " cancelled %llu)\n",
              static_cast<unsigned long long>(a.submitted),
              static_cast<unsigned long long>(a.completed),
              static_cast<unsigned long long>(a.failed),
              static_cast<unsigned long long>(a.expired),
              static_cast<unsigned long long>(a.cancelled));
  std::printf("  in service  queued %llu, executing %llu\n",
              static_cast<unsigned long long>(a.queued),
              static_cast<unsigned long long>(a.executing));
  std::printf("  rejected    %llu\n",
              static_cast<unsigned long long>(a.rejected));
  std::printf("  sessions    %llu open / %llu opened\n",
              static_cast<unsigned long long>(a.sessions_open),
              static_cast<unsigned long long>(a.sessions_opened));
  std::printf("  queue wait  %.3f s total; exec %.3f s total\n",
              a.total_queue_wait_s, a.total_exec_wall_s);
  std::printf("fragment cache:\n");
  std::printf("  %llu lookups (%llu hits, %llu misses), %llu entries,"
              " %.2f MB\n",
              static_cast<unsigned long long>(fc.lookups),
              static_cast<unsigned long long>(fc.hits),
              static_cast<unsigned long long>(fc.misses),
              static_cast<unsigned long long>(fc.entries),
              static_cast<double>(fc.bytes_cached) / 1e6);
  return 0;
}

int cmd_vars(const Args& args) {
  net::Client c;
  if (Status st = connect(args, &c); !st.is_ok()) return fail(st);
  auto vars = c.list_variables();
  if (!vars.is_ok()) return fail(vars.status());
  std::printf("%zu variable(s):\n", vars.value().size());
  for (const MlocStore::VariableDesc& v : vars.value()) {
    std::printf("  %-16s epoch %llu  %s%s\n", v.name.c_str(),
                static_cast<unsigned long long>(v.epoch),
                v.layout.describe().c_str(),
                v.plod_capable ? "" : " (no PLoD)");
  }
  return 0;
}

int cmd_session_stats(const Args& args) {
  net::Client c;
  if (Status st = connect(args, &c); !st.is_ok()) return fail(st);
  if (auto sid = c.open_session("mloc_client"); !sid.is_ok()) {
    return fail(sid.status());
  }
  auto stats = c.session_stats();
  if (!stats.is_ok()) return fail(stats.status());
  const service::SessionStats& s = stats.value();
  std::printf("session '%s' (%s): submitted %llu, completed %llu, failed "
              "%llu, rejected %llu\n",
              s.label.c_str(), s.open ? "open" : "closed",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.rejected));
  (void)c.close_session();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "ping") return cmd_ping(args);
  if (args.command == "query") return cmd_query(args);
  if (args.command == "stats") return cmd_stats(args);
  if (args.command == "session-stats") return cmd_session_stats(args);
  if (args.command == "vars") return cmd_vars(args);
  return usage();
}
