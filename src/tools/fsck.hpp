// mloc_fsck — offline layout-invariant checker (library half).
//
// MLOC's query correctness rests entirely on the mutual consistency of the
// on-disk structures: bin boundaries route VCs, positional indexes key
// every emitted point, PLoD plane sizes drive reassembly, and the Hilbert
// fragment order is what the parallel protocol assumes when it coalesces
// reads. A store that violates any of these silently returns wrong science
// rather than an error. LayoutVerifier opens a written dataset and
// statically validates every invariant (see DESIGN.md "On-disk invariants
// & verification"):
//
//   footer      — each subfile's CRC-32 footer matches its payload;
//   bin-bounds  — interior bin boundaries strictly increasing, bin count
//                 consistent between scheme and subfiles;
//   table       — fragment tables decode exactly, byte-group counts match
//                 the store mode, zone maps are ordered;
//   order       — fragments appear in strictly increasing curve rank, each
//                 chunk at most once per bin, and the recomputed curve is a
//                 valid permutation of the chunk lattice;
//   positions   — every positional blob passes its FNV checksum, decodes
//                 to strictly ascending in-range offsets, and across bins
//                 the positions of each chunk form a bijection onto the
//                 chunk's cells;
//   segments    — positional blobs tile the .idx blob section and payload
//                 segments tile the .dat payload exactly (no gap, overlap,
//                 or out-of-extent block);
//   planes      — each payload segment passes its FNV checksum and decodes
//                 to the exact plane size (group_bytes(g) x count in PLoD
//                 mode, 8 x count total; count doubles in whole-value
//                 mode); for lossless codecs, decoded values must also lie
//                 inside their fragment zone map and route back to their
//                 bin;
//   index       — when the variable carries a hierarchical bitmap index
//                 (.hbx): the node table decodes and matches the store
//                 geometry, every node bitmap passes its FNV checksum and
//                 decodes to the grid's bit width with the recorded
//                 popcount, every level-k aggregate equals the OR of its
//                 children, and every leaf equals the union of its bin's
//                 positional-index entries mapped to global offsets. A
//                 truncated or mis-sealed .hbx reports under "footer" on
//                 the "<var>.hbx" object.
//
// Results come back as a Report: a list of structured issues plus a human
// rendering and a machine-readable JSON document for CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pfs/pfs.hpp"
#include "util/status.hpp"

namespace mloc::fsck {

/// One detected invariant violation.
struct Issue {
  std::string check;   ///< invariant family: "footer", "bin-bounds", ...
  std::string object;  ///< offending object, e.g. "phi.bin3 frag 12 (chunk 7)"
  std::string detail;  ///< what was expected vs found
};

struct Options {
  /// Decompress payload segments to validate plane sizes and values.
  /// Disabling keeps fsck metadata-only (footers, tables, positions).
  bool decode_payloads = true;
  /// Cap on reported issues per store; further findings are counted in
  /// Report::suppressed_issues but not materialized.
  std::size_t max_issues = 256;
};

/// Layout summary of one verified variable, echoed into the JSON report so
/// CI and operators can see which layout each variable was checked under.
struct VariableLayoutInfo {
  std::string name;
  std::string order;       ///< "V-M-S" / "V-S-M"
  std::string curve;       ///< "hilbert", "generalized-morton", ...
  std::string interleave;  ///< generalized-Morton pattern ("" otherwise)
  std::string codec;
  std::string chunk_shape;
  int num_bins = 0;
  bool plod_capable = false;
  // Hierarchical bitmap index, when the layout carries one.
  int index_fanout = 0;          ///< 0 = no .hbx
  bool hbx_present = false;
  int hbx_levels = 0;
  std::uint64_t hbx_nodes = 0;
  std::uint64_t hbx_bytes = 0;   ///< whole .hbx subfile size
};

struct Report {
  std::string store;
  std::vector<Issue> issues;
  std::vector<VariableLayoutInfo> variable_layouts;
  std::uint64_t suppressed_issues = 0;  ///< found beyond Options::max_issues
  std::uint64_t variables_checked = 0;
  std::uint64_t subfiles_checked = 0;
  std::uint64_t fragments_checked = 0;
  std::uint64_t bytes_verified = 0;  ///< subfile bytes covered by CRC scans

  [[nodiscard]] bool ok() const noexcept {
    return issues.empty() && suppressed_issues == 0;
  }

  /// Multi-line human rendering ("store X: clean" or one line per issue).
  [[nodiscard]] std::string human() const;
  /// Machine-readable JSON object (stable keys, for CI consumption).
  [[nodiscard]] std::string json() const;
};

class LayoutVerifier {
 public:
  /// `fs` is borrowed and must outlive the verifier. Non-const only because
  /// MlocStore::open takes a writable storage; fsck never mutates it.
  explicit LayoutVerifier(pfs::PfsStorage* fs, Options opts = {});

  /// Verify every invariant of the store named `name`. Never fails
  /// outright: unopenable/corrupt metadata is reported as issues.
  [[nodiscard]] Report verify_store(const std::string& name) const;

  /// Names of all MLOC stores on the storage (every "<name>.meta" file).
  [[nodiscard]] std::vector<std::string> discover_stores() const;

 private:
  pfs::PfsStorage* fs_;
  Options opts_;
};

}  // namespace mloc::fsck
