#include "analytics/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mloc::analytics {

int Histogram::bin_of(double v) const noexcept {
  if (counts.empty()) return 0;
  if (!(hi > lo)) return 0;
  const double t = (v - lo) / (hi - lo) * static_cast<double>(counts.size());
  const auto b = static_cast<std::int64_t>(std::floor(t));
  if (b < 0) return 0;
  if (b >= static_cast<std::int64_t>(counts.size())) {
    return static_cast<int>(counts.size()) - 1;
  }
  return static_cast<int>(b);
}

Histogram build_histogram(std::span<const double> values, int bins) {
  MLOC_CHECK(bins >= 1);
  Histogram h;
  h.counts.assign(bins, 0);
  if (values.empty()) return h;
  h.lo = values[0];
  h.hi = values[0];
  for (double v : values) {
    if (std::isnan(v)) continue;
    h.lo = std::min(h.lo, v);
    h.hi = std::max(h.hi, v);
  }
  if (!(h.hi > h.lo)) h.hi = h.lo + 1.0;
  for (double v : values) ++h.counts[h.bin_of(v)];
  return h;
}

double histogram_error(const Histogram& reference,
                       std::span<const double> original,
                       std::span<const double> degraded) {
  MLOC_CHECK(original.size() == degraded.size());
  if (original.empty()) return 0.0;
  std::uint64_t moved = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (reference.bin_of(original[i]) != reference.bin_of(degraded[i])) {
      ++moved;
    }
  }
  return static_cast<double>(moved) / static_cast<double>(original.size());
}

KMeansResult kmeans(std::span<const double> points, int dims, int k,
                    int max_iters, Rng& rng) {
  MLOC_CHECK(dims >= 1 && k >= 1 && max_iters >= 1);
  MLOC_CHECK(points.size() % static_cast<std::size_t>(dims) == 0);
  const std::size_t n = points.size() / static_cast<std::size_t>(dims);
  MLOC_CHECK(n >= static_cast<std::size_t>(k));

  KMeansResult out;
  out.centroids.assign(k, std::vector<double>(dims, 0.0));
  // Initial centroids: k distinct random points.
  std::vector<std::size_t> chosen;
  while (chosen.size() < static_cast<std::size_t>(k)) {
    const std::size_t cand = rng.next_below(n);
    if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
      chosen.push_back(cand);
    }
  }
  for (int c = 0; c < k; ++c) {
    for (int d = 0; d < dims; ++d) {
      out.centroids[c][d] = points[chosen[c] * dims + d];
    }
  }

  out.assignment.assign(n, 0);
  std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
  std::vector<std::uint64_t> sizes(k, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    out.inertia = 0.0;
    for (auto& s : sums) std::fill(s.begin(), s.end(), 0.0);
    std::fill(sizes.begin(), sizes.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double d2 = 0.0;
        for (int d = 0; d < dims; ++d) {
          const double delta = points[i * dims + d] - out.centroids[c][d];
          d2 += delta * delta;
        }
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (out.assignment[i] != static_cast<std::uint32_t>(best)) {
        changed = true;
        out.assignment[i] = static_cast<std::uint32_t>(best);
      }
      out.inertia += best_d2;
      ++sizes[best];
      for (int d = 0; d < dims; ++d) {
        sums[best][d] += points[i * dims + d];
      }
    }
    out.iterations = iter + 1;
    for (int c = 0; c < k; ++c) {
      if (sizes[c] == 0) continue;  // empty cluster keeps its centroid
      for (int d = 0; d < dims; ++d) {
        out.centroids[c][d] = sums[c][d] / static_cast<double>(sizes[c]);
      }
    }
    if (!changed && iter > 0) break;
  }
  return out;
}

double kmeans_misclassification(std::span<const double> original,
                                std::span<const double> degraded, int dims,
                                int k, int max_iters, std::uint64_t seed) {
  MLOC_CHECK(original.size() == degraded.size());
  Rng rng_a(seed);
  Rng rng_b(seed);  // identical seeding: cluster indices stay comparable
  const KMeansResult a = kmeans(original, dims, k, max_iters, rng_a);
  const KMeansResult b = kmeans(degraded, dims, k, max_iters, rng_b);
  const std::size_t n = a.assignment.size();
  if (n == 0) return 0.0;
  std::uint64_t moved = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.assignment[i] != b.assignment[i]) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(n);
}

Stats compute_stats(std::span<const double> values) {
  Stats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(values.size());
  return s;
}

double max_relative_error(std::span<const double> original,
                          std::span<const double> degraded) {
  MLOC_CHECK(original.size() == degraded.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double denom = std::abs(original[i]);
    const double err = std::abs(original[i] - degraded[i]);
    worst = std::max(worst, denom > 0 ? err / denom : err);
  }
  return worst;
}

}  // namespace mloc::analytics
