// Analytics kernels used by the paper's accuracy evaluation (§IV-D-2,
// Table VI): equal-width histogram construction and K-means clustering,
// plus the error metrics comparing PLoD-degraded data against originals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace mloc::analytics {

// ------------------------------------------------------------- histogram

struct Histogram {
  double lo = 0.0;
  double hi = 0.0;  ///< values outside [lo, hi) clamp to the edge bins
  std::vector<std::uint64_t> counts;

  [[nodiscard]] int num_bins() const noexcept {
    return static_cast<int>(counts.size());
  }
  /// Bin of a value under this histogram's fixed boundaries.
  [[nodiscard]] int bin_of(double v) const noexcept;
};

/// Equal-width histogram with `bins` bins spanning [min, max] of `values`.
Histogram build_histogram(std::span<const double> values, int bins);

/// Paper's histogram error: fraction of points that fall into a different
/// bin than their counterpart, using boundaries fixed from the originals.
double histogram_error(const Histogram& reference,
                       std::span<const double> original,
                       std::span<const double> degraded);

// --------------------------------------------------------------- K-means

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k x dims
  std::vector<std::uint32_t> assignment;       ///< per point
  int iterations = 0;
  double inertia = 0.0;  ///< sum of squared distances to assigned centroid
};

/// Lloyd's algorithm on row-major points (n x dims). Deterministic given
/// the rng (random initial centroids drawn from the points).
KMeansResult kmeans(std::span<const double> points, int dims, int k,
                    int max_iters, Rng& rng);

/// Paper's K-means error: run clustering on original and degraded data
/// from identical initial centroids; return the fraction of points
/// assigned to different clusters (clusters matched by centroid index —
/// identical seeding keeps indices comparable).
double kmeans_misclassification(std::span<const double> original,
                                std::span<const double> degraded, int dims,
                                int k, int max_iters, std::uint64_t seed);

// ------------------------------------------------------------ statistics

struct Stats {
  double mean = 0.0;
  double variance = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t count = 0;
};

Stats compute_stats(std::span<const double> values);

/// Max point-wise relative error between two equal-length vectors
/// (|a-b| / |a|, zeros compared absolutely).
double max_relative_error(std::span<const double> original,
                          std::span<const double> degraded);

}  // namespace mloc::analytics
