#include "binning/binning.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace mloc {

BinningScheme::BinningScheme(std::vector<double> interior)
    : interior_(std::move(interior)) {
  build_search_index();
}

void BinningScheme::build_search_index() {
  // Up to 64 boundaries (8 cache lines) the flat array searched by a
  // branchless lowered binary search is fastest; past that, rebuild in
  // Eytzinger order so each probe's children share the probe's cache line
  // neighborhood near the root.
  constexpr std::size_t kEytzingerThreshold = 64;
  const std::size_t m = interior_.size();
  eyt_.clear();
  eyt_rank_.clear();
  if (m <= kEytzingerThreshold) return;
  eyt_.resize(m + 1);
  eyt_rank_.resize(m + 1);
  std::size_t next = 0;
  auto fill = [&](auto&& self, std::size_t k) -> void {
    if (k > m) return;
    self(self, 2 * k);
    eyt_[k] = interior_[next];
    eyt_rank_[k] = static_cast<int>(next);
    ++next;
    self(self, 2 * k + 1);
  };
  fill(fill, 1);
}

BinningScheme BinningScheme::equal_frequency(std::span<const double> sample,
                                             int num_bins) {
  MLOC_CHECK(num_bins >= 1);
  MLOC_CHECK(!sample.empty());
  std::vector<double> sorted;
  sorted.reserve(sample.size());
  for (double v : sample) {
    if (!std::isnan(v)) sorted.push_back(v);
  }
  if (sorted.empty()) sorted.push_back(0.0);
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> interior;
  interior.reserve(num_bins - 1);
  for (int b = 1; b < num_bins; ++b) {
    const std::size_t idx = (sorted.size() * static_cast<std::size_t>(b)) /
                            static_cast<std::size_t>(num_bins);
    const double boundary = sorted[std::min(idx, sorted.size() - 1)];
    // Strictly increasing boundaries: heavy ties collapse bins rather than
    // create empty intervals.
    if (interior.empty() || boundary > interior.back()) {
      interior.push_back(boundary);
    }
  }
  return BinningScheme(std::move(interior));
}

BinningScheme BinningScheme::equal_width(double lo, double hi, int num_bins) {
  MLOC_CHECK(num_bins >= 1);
  MLOC_CHECK(lo < hi);
  std::vector<double> interior;
  interior.reserve(num_bins - 1);
  for (int b = 1; b < num_bins; ++b) {
    const double boundary =
        lo + (hi - lo) * static_cast<double>(b) / num_bins;
    if (interior.empty() || boundary > interior.back()) {
      interior.push_back(boundary);
    }
  }
  return BinningScheme(std::move(interior));
}

int BinningScheme::bin_of(double v) const noexcept {
  if (std::isnan(v)) return num_bins() - 1;
  // Count of boundaries <= v: values equal to a boundary go to the upper
  // bin, matching the half-open [lower, upper) interval convention.
  const auto it = std::upper_bound(interior_.begin(), interior_.end(), v);
  return static_cast<int>(it - interior_.begin());
}

void BinningScheme::bin_of_batch(std::span<const double> values,
                                 std::span<int> bins) const noexcept {
  MLOC_DCHECK(bins.size() == values.size());
  const std::size_t m = interior_.size();
  if (m == 0) {
    std::fill(bins.begin(), bins.end(), 0);
    return;
  }
  const int last = static_cast<int>(m);  // NaN routes to the last bin

  if (!eyt_.empty()) {
    // Eytzinger upper_bound: descend right while boundary <= v; the path
    // word's trailing ones encode where the successor (first boundary > v)
    // was last seen. k == 0 after the shift means v >= every boundary.
    const double* eyt = eyt_.data();
    const int* rank = eyt_rank_.data();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double v = values[i];
      std::size_t k = 1;
      while (k <= m) k = 2 * k + (eyt[k] <= v ? 1 : 0);
      k >>= static_cast<unsigned>(std::countr_one(k)) + 1;
      const int idx = k == 0 ? last : rank[k];
      bins[i] = std::isnan(v) ? last : idx;
    }
    return;
  }

  // Branchless lowered binary search: the halving loop has a fixed trip
  // count per scheme and the base adjustment compiles to a conditional
  // move, so there are no data-dependent branch mispredictions. Four values
  // run in lockstep — the halving sequence is data-independent, so the four
  // conditional-move dependency chains overlap instead of serializing.
  const double* boundaries = interior_.data();
  std::size_t i = 0;
  for (; i + 4 <= values.size(); i += 4) {
    const double v0 = values[i];
    const double v1 = values[i + 1];
    const double v2 = values[i + 2];
    const double v3 = values[i + 3];
    const double* b0 = boundaries;
    const double* b1 = boundaries;
    const double* b2 = boundaries;
    const double* b3 = boundaries;
    std::size_t n = m;
    while (n > 1) {
      const std::size_t half = n / 2;
      b0 += (b0[half - 1] <= v0) ? half : 0;
      b1 += (b1[half - 1] <= v1) ? half : 0;
      b2 += (b2[half - 1] <= v2) ? half : 0;
      b3 += (b3[half - 1] <= v3) ? half : 0;
      n -= half;
    }
    bins[i] = std::isnan(v0)
                  ? last
                  : static_cast<int>(b0 - boundaries) + (*b0 <= v0 ? 1 : 0);
    bins[i + 1] = std::isnan(v1)
                      ? last
                      : static_cast<int>(b1 - boundaries) + (*b1 <= v1 ? 1 : 0);
    bins[i + 2] = std::isnan(v2)
                      ? last
                      : static_cast<int>(b2 - boundaries) + (*b2 <= v2 ? 1 : 0);
    bins[i + 3] = std::isnan(v3)
                      ? last
                      : static_cast<int>(b3 - boundaries) + (*b3 <= v3 ? 1 : 0);
  }
  for (; i < values.size(); ++i) {
    const double v = values[i];
    const double* base = boundaries;
    std::size_t n = m;
    while (n > 1) {
      const std::size_t half = n / 2;
      base += (base[half - 1] <= v) ? half : 0;
      n -= half;
    }
    const int idx =
        static_cast<int>(base - boundaries) + (*base <= v ? 1 : 0);
    bins[i] = std::isnan(v) ? last : idx;
  }
}

double BinningScheme::lower(int bin) const noexcept {
  MLOC_DCHECK(bin >= 0 && bin < num_bins());
  if (bin == 0) return -std::numeric_limits<double>::infinity();
  return interior_[bin - 1];
}

double BinningScheme::upper(int bin) const noexcept {
  MLOC_DCHECK(bin >= 0 && bin < num_bins());
  if (bin == num_bins() - 1) return std::numeric_limits<double>::infinity();
  return interior_[bin];
}

BinningScheme::BinSpan BinningScheme::bins_overlapping(
    double lo, double hi) const noexcept {
  if (!(lo < hi)) return {};
  BinSpan out;
  out.first = bin_of(lo);
  // hi is exclusive: the bin containing hi participates only if some value
  // < hi lands in it, i.e. hi > lower(bin_of(hi)).
  int last = bin_of(hi);
  if (last > 0 && hi <= lower(last)) --last;
  out.last = std::max(out.first, last);
  // A value exactly at hi excluded: when hi == lower(last) handled above.
  return out;
}

bool BinningScheme::aligned(int bin, double lo, double hi) const noexcept {
  MLOC_DCHECK(bin >= 0 && bin < num_bins());
  return lo <= lower(bin) && upper(bin) <= hi;
}

void BinningScheme::serialize(ByteWriter& w) const {
  w.put_varint(interior_.size());
  for (double b : interior_) w.put_f64(b);
}

Result<BinningScheme> BinningScheme::deserialize(ByteReader& r) {
  MLOC_ASSIGN_OR_RETURN(std::uint64_t n, r.get_varint());
  if (n > (1ull << 24)) return corrupt_data("binning: implausible bin count");
  std::vector<double> interior(n);
  for (auto& b : interior) {
    MLOC_ASSIGN_OR_RETURN(b, r.get_f64());
  }
  for (std::size_t i = 1; i < interior.size(); ++i) {
    if (!(interior[i] > interior[i - 1])) {
      return corrupt_data("binning: boundaries not strictly increasing");
    }
  }
  return BinningScheme(std::move(interior));
}

namespace detail::scalar {

void bin_of_batch(const BinningScheme& scheme, std::span<const double> values,
                  std::span<int> bins) {
  MLOC_CHECK(bins.size() == values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    bins[i] = scheme.bin_of(values[i]);
  }
}

}  // namespace detail::scalar

}  // namespace mloc
