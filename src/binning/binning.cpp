#include "binning/binning.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mloc {

BinningScheme BinningScheme::equal_frequency(std::span<const double> sample,
                                             int num_bins) {
  MLOC_CHECK(num_bins >= 1);
  MLOC_CHECK(!sample.empty());
  std::vector<double> sorted;
  sorted.reserve(sample.size());
  for (double v : sample) {
    if (!std::isnan(v)) sorted.push_back(v);
  }
  if (sorted.empty()) sorted.push_back(0.0);
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> interior;
  interior.reserve(num_bins - 1);
  for (int b = 1; b < num_bins; ++b) {
    const std::size_t idx = (sorted.size() * static_cast<std::size_t>(b)) /
                            static_cast<std::size_t>(num_bins);
    const double boundary = sorted[std::min(idx, sorted.size() - 1)];
    // Strictly increasing boundaries: heavy ties collapse bins rather than
    // create empty intervals.
    if (interior.empty() || boundary > interior.back()) {
      interior.push_back(boundary);
    }
  }
  return BinningScheme(std::move(interior));
}

BinningScheme BinningScheme::equal_width(double lo, double hi, int num_bins) {
  MLOC_CHECK(num_bins >= 1);
  MLOC_CHECK(lo < hi);
  std::vector<double> interior;
  interior.reserve(num_bins - 1);
  for (int b = 1; b < num_bins; ++b) {
    const double boundary =
        lo + (hi - lo) * static_cast<double>(b) / num_bins;
    if (interior.empty() || boundary > interior.back()) {
      interior.push_back(boundary);
    }
  }
  return BinningScheme(std::move(interior));
}

int BinningScheme::bin_of(double v) const noexcept {
  if (std::isnan(v)) return num_bins() - 1;
  // Count of boundaries <= v: values equal to a boundary go to the upper
  // bin, matching the half-open [lower, upper) interval convention.
  const auto it = std::upper_bound(interior_.begin(), interior_.end(), v);
  return static_cast<int>(it - interior_.begin());
}

double BinningScheme::lower(int bin) const noexcept {
  MLOC_DCHECK(bin >= 0 && bin < num_bins());
  if (bin == 0) return -std::numeric_limits<double>::infinity();
  return interior_[bin - 1];
}

double BinningScheme::upper(int bin) const noexcept {
  MLOC_DCHECK(bin >= 0 && bin < num_bins());
  if (bin == num_bins() - 1) return std::numeric_limits<double>::infinity();
  return interior_[bin];
}

BinningScheme::BinSpan BinningScheme::bins_overlapping(
    double lo, double hi) const noexcept {
  if (!(lo < hi)) return {};
  BinSpan out;
  out.first = bin_of(lo);
  // hi is exclusive: the bin containing hi participates only if some value
  // < hi lands in it, i.e. hi > lower(bin_of(hi)).
  int last = bin_of(hi);
  if (last > 0 && hi <= lower(last)) --last;
  out.last = std::max(out.first, last);
  // A value exactly at hi excluded: when hi == lower(last) handled above.
  return out;
}

bool BinningScheme::aligned(int bin, double lo, double hi) const noexcept {
  MLOC_DCHECK(bin >= 0 && bin < num_bins());
  return lo <= lower(bin) && upper(bin) <= hi;
}

void BinningScheme::serialize(ByteWriter& w) const {
  w.put_varint(interior_.size());
  for (double b : interior_) w.put_f64(b);
}

Result<BinningScheme> BinningScheme::deserialize(ByteReader& r) {
  MLOC_ASSIGN_OR_RETURN(std::uint64_t n, r.get_varint());
  if (n > (1ull << 24)) return corrupt_data("binning: implausible bin count");
  std::vector<double> interior(n);
  for (auto& b : interior) {
    MLOC_ASSIGN_OR_RETURN(b, r.get_f64());
  }
  for (std::size_t i = 1; i < interior.size(); ++i) {
    if (!(interior[i] > interior[i - 1])) {
      return corrupt_data("binning: boundaries not strictly increasing");
    }
  }
  return BinningScheme(std::move(interior));
}

}  // namespace mloc
