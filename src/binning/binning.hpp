// Value-based binning — paper §III-B-1.
//
// MLOC's top optimization level places points into bins by value so that a
// value-constrained (VC) query touches only the bins overlapping its range.
// Equal-frequency boundaries (sample quantiles, applied dataset-wide) keep
// bin populations — and therefore per-bin access cost — balanced.
//
// Bin b covers the half-open value interval [lower(b), upper(b)), with
// lower(0) = -inf and upper(n-1) = +inf, so every finite double maps to
// exactly one bin. NaNs map to the last bin (they fail every VC filter
// downstream). A bin is *aligned* with a VC when its whole interval lies
// inside the constraint — its points qualify without decompression.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace mloc {

class BinningScheme;

namespace detail::scalar {
/// Retained per-value reference (bin_of via std::upper_bound in a loop) for
/// differential tests and bench_kernels A/B runs against bin_of_batch.
void bin_of_batch(const BinningScheme& scheme, std::span<const double> values,
                  std::span<int> bins);
}  // namespace detail::scalar

class BinningScheme {
 public:
  BinningScheme() = default;

  /// Quantile boundaries estimated from `sample` (the paper computes them
  /// "from partial dataset, and then applies the boundaries to the whole").
  /// Precondition: num_bins >= 1, sample non-empty.
  static BinningScheme equal_frequency(std::span<const double> sample,
                                       int num_bins);

  /// Uniform boundaries across [lo, hi]. Precondition: lo < hi.
  static BinningScheme equal_width(double lo, double hi, int num_bins);

  [[nodiscard]] int num_bins() const noexcept {
    return static_cast<int>(interior_.size()) + 1;
  }

  /// Bin index of a value (NaN -> last bin).
  [[nodiscard]] int bin_of(double v) const noexcept;

  /// Batched bin_of: bins[i] = bin_of(values[i]) for the whole span. The
  /// ingest partition stage routes every cell through this. Runs a
  /// branchless lowered binary search over the boundary array, switching to
  /// a cache-friendly Eytzinger (BFS) layout once num_bins > 64 — see
  /// DESIGN.md §11. Precondition: bins.size() == values.size().
  void bin_of_batch(std::span<const double> values,
                    std::span<int> bins) const noexcept;

  /// Interval endpoints of a bin (-inf / +inf at the extremes).
  [[nodiscard]] double lower(int bin) const noexcept;
  [[nodiscard]] double upper(int bin) const noexcept;

  /// Bins whose interval intersects the value range [lo, hi)
  /// (contiguous by construction). Returns {first, last} inclusive, or
  /// first > last when empty.
  struct BinSpan {
    int first = 0;
    int last = -1;
    [[nodiscard]] bool empty() const noexcept { return first > last; }
  };
  [[nodiscard]] BinSpan bins_overlapping(double lo, double hi) const noexcept;

  /// True when bin's interval is contained in [lo, hi): all its points
  /// satisfy the constraint (the paper's "aligned bin" fast path).
  [[nodiscard]] bool aligned(int bin, double lo, double hi) const noexcept;

  void serialize(ByteWriter& w) const;
  static Result<BinningScheme> deserialize(ByteReader& r);

  [[nodiscard]] bool operator==(const BinningScheme& o) const noexcept {
    return interior_ == o.interior_;
  }

 private:
  explicit BinningScheme(std::vector<double> interior);

  void build_search_index();

  // Interior boundaries, strictly increasing, size = num_bins - 1.
  std::vector<double> interior_;

  // Eytzinger (BFS heap order) copy of interior_ used by bin_of_batch when
  // the boundary array outgrows a couple of cache lines (num_bins > 64).
  // 1-based: eyt_[0] unused; eyt_rank_[k] = sorted rank of eyt_[k], i.e. the
  // bin index for a search ending just above that boundary. Derived from
  // interior_ (rebuilt by the constructor funnel), so excluded from
  // operator== and serialization.
  std::vector<double> eyt_;
  std::vector<int> eyt_rank_;
};

}  // namespace mloc
