// FastBit-like baseline: binned bitmap index with WAH compression.
//
// Mechanism-faithful reimplementation of the comparator in paper §IV-A-2:
// values are binned (precision-style fine binning, default 1000 bins —
// FastBit's per-pattern binning yields indices of 30–200% of the raw data,
// Table I shows 125%), each bin owning a WAH-compressed bitmap of the
// positions it contains. The raw data file is kept alongside (FastBit
// indexes, it does not re-encode).
//
// The performance-critical behaviour the paper observes: FastBit assumes
// the index resides in memory; on disk-resident datasets the *entire*
// index must be loaded per query before any bitmap work happens, which
// dominates response time for both region and value queries.
#pragma once

#include <string>
#include <vector>

#include "array/grid.hpp"
#include "binning/binning.hpp"
#include "bitmap/bitmap.hpp"
#include "pfs/pfs.hpp"
#include "query/query.hpp"

namespace mloc::baselines {

class FastBitStore {
 public:
  /// Build index (`<name>.fbidx`) and raw data (`<name>.fbraw`) files.
  static Result<FastBitStore> create(pfs::PfsStorage* fs, std::string name,
                                     const Grid& grid, int num_bins = 1000);
  static Result<FastBitStore> open(pfs::PfsStorage* fs,
                                   const std::string& name, NDShape shape);

  /// Region query (VC): load index, OR covered bins' bitmaps; candidate
  /// (edge) bins are verified against the raw data.
  [[nodiscard]] Result<QueryResult> region_query(ValueConstraint vc,
                                                 bool values_needed,
                                                 int num_ranks = 1) const;

  /// Value query (SC): FastBit has no spatial structure — the index is
  /// still loaded (its operating assumption), then qualifying cells are
  /// fetched from the raw file by computed offsets.
  [[nodiscard]] Result<QueryResult> value_query(const Region& sc,
                                                int num_ranks = 1) const;

  [[nodiscard]] std::uint64_t data_bytes() const;
  [[nodiscard]] std::uint64_t index_bytes() const;

 private:
  FastBitStore() = default;

  /// Read the full index file (the per-query load) into bin bitmaps.
  Result<std::vector<WahBitmap>> load_index(pfs::IoLog* log,
                                            ComponentTimes* times) const;

  /// Fetch raw values at ascending positions via 1 MiB page reads
  /// (FastBit's sequential candidate-check access pattern).
  Result<std::vector<double>> read_values_paged(
      std::span<const std::uint64_t> positions, pfs::IoLog* io) const;

  pfs::PfsStorage* fs_ = nullptr;
  pfs::FileId index_file_ = 0;
  pfs::FileId raw_file_ = 0;
  NDShape shape_;
  BinningScheme scheme_;
};

}  // namespace mloc::baselines
