#include "baselines/seqscan.hpp"

#include <algorithm>

#include "parallel/runtime.hpp"
#include "util/timer.hpp"

namespace mloc::baselines {

Result<SeqScanStore> SeqScanStore::create(pfs::PfsStorage* fs,
                                          std::string name, const Grid& grid) {
  MLOC_CHECK(fs != nullptr);
  SeqScanStore store;
  store.fs_ = fs;
  store.shape_ = grid.shape();
  MLOC_ASSIGN_OR_RETURN(store.file_, fs->create(name + ".raw"));
  const Bytes raw = doubles_to_bytes(grid.values());
  MLOC_RETURN_IF_ERROR(fs->append(store.file_, raw));
  return store;
}

Result<SeqScanStore> SeqScanStore::open(pfs::PfsStorage* fs,
                                        const std::string& name,
                                        NDShape shape) {
  MLOC_CHECK(fs != nullptr);
  SeqScanStore store;
  store.fs_ = fs;
  store.shape_ = shape;
  MLOC_ASSIGN_OR_RETURN(store.file_, fs->open(name + ".raw"));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t size, fs->file_size(store.file_));
  if (size != shape.volume() * sizeof(double)) {
    return corrupt_data("seqscan: file size mismatches shape");
  }
  return store;
}

std::uint64_t SeqScanStore::data_bytes() const {
  return fs_->file_size(file_).value_or(0);
}

Result<QueryResult> SeqScanStore::region_query(ValueConstraint vc,
                                               bool values_needed,
                                               int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("num_ranks must be >= 1");
  QueryResult result;
  const std::uint64_t n = shape_.volume();

  struct RankOut {
    std::vector<std::uint64_t> positions;
    std::vector<double> values;
  };
  std::vector<RankOut> outs(num_ranks);
  Status status = Status::ok();
  auto ranks = parallel::run_ranks(num_ranks, [&](parallel::RankContext& ctx) {
    if (!status.is_ok()) return;
    const auto ranges = parallel::split_even(n, ctx.num_ranks);
    const auto [lo, hi] = ranges[ctx.rank];
    if (lo == hi) return;
    auto raw = fs_->read(file_, lo * sizeof(double),
                         (hi - lo) * sizeof(double), &ctx.io_log,
                         static_cast<std::uint32_t>(ctx.rank));
    if (!raw.is_ok()) {
      status = raw.status();
      return;
    }
    Stopwatch sw;
    auto vals = bytes_to_doubles(raw.value());
    if (!vals.is_ok()) {
      status = vals.status();
      return;
    }
    for (std::uint64_t i = 0; i < vals.value().size(); ++i) {
      if (vc.matches(vals.value()[i])) {
        outs[ctx.rank].positions.push_back(lo + i);
        if (values_needed) outs[ctx.rank].values.push_back(vals.value()[i]);
      }
    }
    ctx.times.reconstruct += sw.seconds();
  });
  MLOC_RETURN_IF_ERROR(status);

  for (auto& o : outs) {
    result.positions.insert(result.positions.end(), o.positions.begin(),
                            o.positions.end());
    result.values.insert(result.values.end(), o.values.begin(),
                         o.values.end());
  }
  const auto io = parallel::merged_io_log(ranks);
  result.bytes_read = io.total_bytes();
  result.times.io = pfs::model_makespan(fs_->config(), io, num_ranks);
  const auto cpu = parallel::max_rank_times(ranks);
  result.times.decompress = cpu.decompress;
  result.times.reconstruct = cpu.reconstruct;
  return result;
}

Result<QueryResult> SeqScanStore::value_query(const Region& sc,
                                              int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("num_ranks must be >= 1");
  if (sc.ndims() != shape_.ndims()) {
    return invalid_argument("seqscan: SC dimensionality mismatch");
  }
  QueryResult result;
  if (sc.empty()) return result;

  // Enumerate innermost-dimension runs of the region: each is contiguous
  // in the row-major file.
  const int last = shape_.ndims() - 1;
  Coord hi = sc.hi();
  hi[last] = sc.lo(last) + 1;
  const Region outer(sc.ndims(), sc.lo(), hi);
  const std::uint32_t run = sc.extent(last);
  std::vector<std::uint64_t> run_starts;  // linear offsets
  outer.for_each([&](const Coord& c) {
    run_starts.push_back(shape_.linearize(c));
  });

  struct RankOut {
    std::vector<std::uint64_t> positions;
    std::vector<double> values;
  };
  std::vector<RankOut> outs(num_ranks);
  Status status = Status::ok();
  auto ranks = parallel::run_ranks(num_ranks, [&](parallel::RankContext& ctx) {
    if (!status.is_ok()) return;
    const auto ranges = parallel::split_even(run_starts.size(), ctx.num_ranks);
    for (std::size_t r = ranges[ctx.rank].first; r < ranges[ctx.rank].second;
         ++r) {
      auto raw = fs_->read(file_, run_starts[r] * sizeof(double),
                           static_cast<std::uint64_t>(run) * sizeof(double),
                           &ctx.io_log, static_cast<std::uint32_t>(ctx.rank));
      if (!raw.is_ok()) {
        status = raw.status();
        return;
      }
      Stopwatch sw;
      auto vals = bytes_to_doubles(raw.value());
      if (!vals.is_ok()) {
        status = vals.status();
        return;
      }
      for (std::uint32_t i = 0; i < run; ++i) {
        outs[ctx.rank].positions.push_back(run_starts[r] + i);
        outs[ctx.rank].values.push_back(vals.value()[i]);
      }
      ctx.times.reconstruct += sw.seconds();
    }
  });
  MLOC_RETURN_IF_ERROR(status);

  // Runs were assigned in ascending order, so concatenation stays sorted.
  for (auto& o : outs) {
    result.positions.insert(result.positions.end(), o.positions.begin(),
                            o.positions.end());
    result.values.insert(result.values.end(), o.values.begin(),
                         o.values.end());
  }
  const auto io = parallel::merged_io_log(ranks);
  result.bytes_read = io.total_bytes();
  result.times.io = pfs::model_makespan(fs_->config(), io, num_ranks);
  const auto cpu = parallel::max_rank_times(ranks);
  result.times.decompress = cpu.decompress;
  result.times.reconstruct = cpu.reconstruct;
  return result;
}

}  // namespace mloc::baselines
