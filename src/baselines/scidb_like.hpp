// SciDB-like baseline: chunked array store with boundary overlap.
//
// Mechanism-faithful reimplementation of the comparator in §IV-A-2: the
// array is split into regular chunks (same chunk shape as MLOC for
// fairness); each stored chunk is widened by an overlap margin replicated
// from its neighbours (SciDB's trick to keep window/neighbourhood queries
// single-chunk — the reason its Table I footprint exceeds raw size).
//
// Spatial queries read whole covering chunks (chunk-granular I/O) and
// filter. Value-constrained queries have no index: every chunk is
// scanned. Chunk processing passes through the array engine, modeled as a
// fixed per-chunk executor overhead (see DESIGN.md substitutions).
#pragma once

#include <string>
#include <vector>

#include "array/chunking.hpp"
#include "array/grid.hpp"
#include "pfs/pfs.hpp"
#include "query/query.hpp"

namespace mloc::baselines {

class SciDbStore {
 public:
  struct Options {
    NDShape chunk_shape;
    std::uint32_t overlap = 8;            ///< replicated margin cells/side
    double per_chunk_overhead_s = 0.05;   ///< modeled executor cost/chunk
    /// Modeled array-engine scan throughput: SciDB evaluates filters
    /// through its executor at tens of MB/s (paper Table II shows ~30x
    /// the seqscan cost for full scans), charged per chunk byte.
    double executor_bps = 50e6;
  };

  static Result<SciDbStore> create(pfs::PfsStorage* fs, std::string name,
                                   const Grid& grid, Options opts);

  /// Value query (SC): read covering chunks (with their overlap), filter.
  [[nodiscard]] Result<QueryResult> value_query(const Region& sc,
                                                int num_ranks = 1) const;

  /// Region query (VC): full chunk-by-chunk scan.
  [[nodiscard]] Result<QueryResult> region_query(ValueConstraint vc,
                                                 bool values_needed,
                                                 int num_ranks = 1) const;

  [[nodiscard]] std::uint64_t data_bytes() const;

 private:
  SciDbStore() = default;

  /// Stored (widened) region of a chunk: its region grown by `overlap`
  /// cells per side, clipped to the array.
  [[nodiscard]] Region stored_region(ChunkId id) const;

  pfs::PfsStorage* fs_ = nullptr;
  pfs::FileId file_ = 0;
  NDShape shape_;
  ChunkGrid chunks_;
  Options opts_;
  std::vector<std::uint64_t> chunk_offsets_;  ///< byte offset per chunk
  std::vector<std::uint64_t> chunk_lengths_;
};

}  // namespace mloc::baselines
