#include "baselines/scidb_like.hpp"

#include <algorithm>

#include "parallel/runtime.hpp"
#include "util/timer.hpp"

namespace mloc::baselines {

Region SciDbStore::stored_region(ChunkId id) const {
  const Region base = chunks_.chunk_region(id);
  Coord lo{}, hi{};
  for (int d = 0; d < shape_.ndims(); ++d) {
    lo[d] = base.lo(d) >= opts_.overlap ? base.lo(d) - opts_.overlap : 0;
    hi[d] = std::min<std::uint32_t>(base.hi(d) + opts_.overlap,
                                    shape_.extent(d));
  }
  return {shape_.ndims(), lo, hi};
}

Result<SciDbStore> SciDbStore::create(pfs::PfsStorage* fs, std::string name,
                                      const Grid& grid, Options opts) {
  MLOC_CHECK(fs != nullptr);
  SciDbStore store;
  store.fs_ = fs;
  store.shape_ = grid.shape();
  store.opts_ = opts;
  store.chunks_ = ChunkGrid(grid.shape(), opts.chunk_shape);
  MLOC_ASSIGN_OR_RETURN(store.file_, fs->create(name + ".scidb"));

  store.chunk_offsets_.resize(store.chunks_.num_chunks());
  store.chunk_lengths_.resize(store.chunks_.num_chunks());
  std::uint64_t offset = 0;
  for (ChunkId c = 0; c < store.chunks_.num_chunks(); ++c) {
    const Region wide = store.stored_region(c);
    const std::vector<double> vals = grid.extract(wide);
    const Bytes raw = doubles_to_bytes(vals);
    store.chunk_offsets_[c] = offset;
    store.chunk_lengths_[c] = raw.size();
    MLOC_RETURN_IF_ERROR(fs->append(store.file_, raw));
    offset += raw.size();
  }
  return store;
}

std::uint64_t SciDbStore::data_bytes() const {
  return fs_->file_size(file_).value_or(0);
}

Result<QueryResult> SciDbStore::value_query(const Region& sc,
                                            int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("num_ranks must be >= 1");
  if (sc.ndims() != shape_.ndims()) {
    return invalid_argument("scidb: SC dimensionality mismatch");
  }
  QueryResult result;
  if (sc.empty()) return result;
  const auto covering = chunks_.chunks_overlapping(sc);

  struct RankOut {
    std::vector<std::pair<std::uint64_t, double>> hits;
    double overhead_s = 0;
  };
  std::vector<RankOut> outs(num_ranks);
  Status status = Status::ok();
  auto ranks = parallel::run_ranks(num_ranks, [&](parallel::RankContext& ctx) {
    if (!status.is_ok()) return;
    const auto ranges = parallel::split_even(covering.size(), ctx.num_ranks);
    for (std::size_t i = ranges[ctx.rank].first; i < ranges[ctx.rank].second;
         ++i) {
      const ChunkId c = covering[i];
      auto raw = fs_->read(file_, chunk_offsets_[c], chunk_lengths_[c],
                           &ctx.io_log, static_cast<std::uint32_t>(ctx.rank));
      if (!raw.is_ok()) {
        status = raw.status();
        return;
      }
      Stopwatch sw;
      auto vals = bytes_to_doubles(raw.value());
      if (!vals.is_ok()) {
        status = vals.status();
        return;
      }
      const Region wide = stored_region(c);
      const Region core = chunks_.chunk_region(c);  // avoid overlap dupes
      std::size_t k = 0;
      wide.for_each([&](const Coord& coord) {
        const double v = vals.value()[k++];
        if (core.contains(coord) && sc.contains(coord)) {
          outs[ctx.rank].hits.emplace_back(shape_.linearize(coord), v);
        }
      });
      ctx.times.reconstruct += sw.seconds();
      outs[ctx.rank].overhead_s +=
          opts_.per_chunk_overhead_s +
          static_cast<double>(chunk_lengths_[c]) / opts_.executor_bps;
    }
  });
  MLOC_RETURN_IF_ERROR(status);

  std::vector<std::pair<std::uint64_t, double>> merged;
  double max_overhead = 0;
  for (auto& o : outs) {
    merged.insert(merged.end(), o.hits.begin(), o.hits.end());
    max_overhead = std::max(max_overhead, o.overhead_s);
  }
  std::sort(merged.begin(), merged.end());
  for (const auto& [pos, val] : merged) {
    result.positions.push_back(pos);
    result.values.push_back(val);
  }
  const auto io = parallel::merged_io_log(ranks);
  result.bytes_read = io.total_bytes();
  result.times.io = pfs::model_makespan(fs_->config(), io, num_ranks);
  const auto cpu = parallel::max_rank_times(ranks);
  result.times.decompress = cpu.decompress;
  result.times.reconstruct = cpu.reconstruct + max_overhead;
  return result;
}

Result<QueryResult> SciDbStore::region_query(ValueConstraint vc,
                                             bool values_needed,
                                             int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("num_ranks must be >= 1");
  QueryResult result;

  struct RankOut {
    std::vector<std::pair<std::uint64_t, double>> hits;
    double overhead_s = 0;
  };
  std::vector<RankOut> outs(num_ranks);
  Status status = Status::ok();
  auto ranks = parallel::run_ranks(num_ranks, [&](parallel::RankContext& ctx) {
    if (!status.is_ok()) return;
    const auto ranges = parallel::split_even(chunks_.num_chunks(),
                                             ctx.num_ranks);
    for (std::size_t i = ranges[ctx.rank].first; i < ranges[ctx.rank].second;
         ++i) {
      const auto c = static_cast<ChunkId>(i);
      auto raw = fs_->read(file_, chunk_offsets_[c], chunk_lengths_[c],
                           &ctx.io_log, static_cast<std::uint32_t>(ctx.rank));
      if (!raw.is_ok()) {
        status = raw.status();
        return;
      }
      Stopwatch sw;
      auto vals = bytes_to_doubles(raw.value());
      if (!vals.is_ok()) {
        status = vals.status();
        return;
      }
      const Region wide = stored_region(c);
      const Region core = chunks_.chunk_region(c);
      std::size_t k = 0;
      wide.for_each([&](const Coord& coord) {
        const double v = vals.value()[k++];
        if (core.contains(coord) && vc.matches(v)) {
          outs[ctx.rank].hits.emplace_back(shape_.linearize(coord), v);
        }
      });
      ctx.times.reconstruct += sw.seconds();
      outs[ctx.rank].overhead_s +=
          opts_.per_chunk_overhead_s +
          static_cast<double>(chunk_lengths_[c]) / opts_.executor_bps;
    }
  });
  MLOC_RETURN_IF_ERROR(status);

  std::vector<std::pair<std::uint64_t, double>> merged;
  double max_overhead = 0;
  for (auto& o : outs) {
    merged.insert(merged.end(), o.hits.begin(), o.hits.end());
    max_overhead = std::max(max_overhead, o.overhead_s);
  }
  std::sort(merged.begin(), merged.end());
  for (const auto& [pos, val] : merged) {
    result.positions.push_back(pos);
    if (values_needed) result.values.push_back(val);
  }
  const auto io = parallel::merged_io_log(ranks);
  result.bytes_read = io.total_bytes();
  result.times.io = pfs::model_makespan(fs_->config(), io, num_ranks);
  const auto cpu = parallel::max_rank_times(ranks);
  result.times.decompress = cpu.decompress;
  result.times.reconstruct = cpu.reconstruct + max_overhead;
  return result;
}

}  // namespace mloc::baselines
