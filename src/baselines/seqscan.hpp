// Sequential-scan baseline (paper §IV-A-2).
//
// The dataset is linearized row-major into a single raw file. Value
// constraints require scanning the whole file; spatial constraints are
// served by computing file offsets from the multi-dimensional coordinates
// (one extent per innermost-dimension run, coalesced by the PFS model).
#pragma once

#include <string>

#include "array/grid.hpp"
#include "pfs/pfs.hpp"
#include "query/query.hpp"

namespace mloc::baselines {

class SeqScanStore {
 public:
  /// Write `grid` as raw row-major doubles into file `<name>.raw`.
  static Result<SeqScanStore> create(pfs::PfsStorage* fs, std::string name,
                                     const Grid& grid);
  static Result<SeqScanStore> open(pfs::PfsStorage* fs,
                                   const std::string& name, NDShape shape);

  /// Region query (VC): full scan, positions (and values if requested).
  [[nodiscard]] Result<QueryResult> region_query(ValueConstraint vc,
                                                 bool values_needed,
                                                 int num_ranks = 1) const;

  /// Value query (SC): offset-computed partial reads.
  [[nodiscard]] Result<QueryResult> value_query(const Region& sc,
                                                int num_ranks = 1) const;

  [[nodiscard]] std::uint64_t data_bytes() const;

 private:
  SeqScanStore() = default;
  pfs::PfsStorage* fs_ = nullptr;
  pfs::FileId file_ = 0;
  NDShape shape_;
};

}  // namespace mloc::baselines
