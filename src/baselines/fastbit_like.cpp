#include "baselines/fastbit_like.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace mloc::baselines {

Result<FastBitStore> FastBitStore::create(pfs::PfsStorage* fs,
                                          std::string name, const Grid& grid,
                                          int num_bins) {
  MLOC_CHECK(fs != nullptr);
  FastBitStore store;
  store.fs_ = fs;
  store.shape_ = grid.shape();

  // Precision-style fine binning over a sample.
  std::vector<double> sample;
  const std::uint64_t stride = std::max<std::uint64_t>(1, grid.size() / 100000);
  for (std::uint64_t i = 0; i < grid.size(); i += stride) {
    sample.push_back(grid.at_linear(i));
  }
  store.scheme_ = BinningScheme::equal_frequency(sample, num_bins);
  const int nbins = store.scheme_.num_bins();

  // One bitmap per bin.
  std::vector<Bitmap> bitmaps(nbins, Bitmap(grid.size()));
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    bitmaps[store.scheme_.bin_of(grid.at_linear(i))].set(i);
  }

  // Index file: binning scheme + WAH bitmaps.
  ByteWriter w;
  store.scheme_.serialize(w);
  w.put_varint(static_cast<std::uint64_t>(nbins));
  for (const auto& b : bitmaps) {
    WahBitmap::compress(b).serialize(w);
  }
  MLOC_ASSIGN_OR_RETURN(store.index_file_, fs->create(name + ".fbidx"));
  MLOC_RETURN_IF_ERROR(fs->append(store.index_file_, w.bytes()));

  MLOC_ASSIGN_OR_RETURN(store.raw_file_, fs->create(name + ".fbraw"));
  MLOC_RETURN_IF_ERROR(
      fs->append(store.raw_file_, doubles_to_bytes(grid.values())));
  return store;
}

Result<FastBitStore> FastBitStore::open(pfs::PfsStorage* fs,
                                        const std::string& name,
                                        NDShape shape) {
  MLOC_CHECK(fs != nullptr);
  FastBitStore store;
  store.fs_ = fs;
  store.shape_ = shape;
  MLOC_ASSIGN_OR_RETURN(store.index_file_, fs->open(name + ".fbidx"));
  MLOC_ASSIGN_OR_RETURN(store.raw_file_, fs->open(name + ".fbraw"));
  // The scheme is re-read on each query load; read it once here for bin
  // bound queries (cheap, cached in memory thereafter).
  MLOC_ASSIGN_OR_RETURN(std::uint64_t idx_size,
                        fs->file_size(store.index_file_));
  MLOC_ASSIGN_OR_RETURN(Bytes idx, fs->read(store.index_file_, 0, idx_size));
  ByteReader r(idx);
  MLOC_ASSIGN_OR_RETURN(store.scheme_, BinningScheme::deserialize(r));
  return store;
}

std::uint64_t FastBitStore::data_bytes() const {
  return fs_->file_size(raw_file_).value_or(0);
}

std::uint64_t FastBitStore::index_bytes() const {
  return fs_->file_size(index_file_).value_or(0);
}

Result<std::vector<WahBitmap>> FastBitStore::load_index(
    pfs::IoLog* log, ComponentTimes* times) const {
  // The whole index file is fetched from storage — FastBit's in-memory
  // operating assumption, charged to I/O per query (paper §IV-C-2).
  MLOC_ASSIGN_OR_RETURN(std::uint64_t idx_size, fs_->file_size(index_file_));
  MLOC_ASSIGN_OR_RETURN(Bytes idx,
                        fs_->read(index_file_, 0, idx_size, log, 0));
  Stopwatch sw;
  ByteReader r(idx);
  MLOC_ASSIGN_OR_RETURN(BinningScheme scheme, BinningScheme::deserialize(r));
  (void)scheme;
  MLOC_ASSIGN_OR_RETURN(std::uint64_t nbins, r.get_varint());
  if (nbins > (1ull << 24)) return corrupt_data("fastbit: bin count");
  std::vector<WahBitmap> bitmaps;
  bitmaps.reserve(nbins);
  for (std::uint64_t b = 0; b < nbins; ++b) {
    MLOC_ASSIGN_OR_RETURN(WahBitmap bm, WahBitmap::deserialize(r));
    bitmaps.push_back(std::move(bm));
  }
  times->decompress += sw.seconds();
  return bitmaps;
}

Result<std::vector<double>> FastBitStore::read_values_paged(
    std::span<const std::uint64_t> positions, pfs::IoLog* io) const {
  constexpr std::uint64_t kPageBytes = 1 << 20;
  constexpr std::uint64_t kPerPage = kPageBytes / sizeof(double);
  MLOC_ASSIGN_OR_RETURN(std::uint64_t file_bytes, fs_->file_size(raw_file_));
  std::vector<double> out(positions.size());
  Bytes page;
  std::uint64_t loaded_page = ~0ull;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::uint64_t p = positions[i];
    const std::uint64_t page_idx = p / kPerPage;
    if (page_idx != loaded_page) {
      const std::uint64_t off = page_idx * kPageBytes;
      const std::uint64_t len = std::min(kPageBytes, file_bytes - off);
      MLOC_ASSIGN_OR_RETURN(page, fs_->read(raw_file_, off, len, io, 0));
      loaded_page = page_idx;
    }
    std::memcpy(&out[i], page.data() + (p % kPerPage) * sizeof(double),
                sizeof(double));
  }
  return out;
}

Result<QueryResult> FastBitStore::region_query(ValueConstraint vc,
                                               bool values_needed,
                                               int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("num_ranks must be >= 1");
  QueryResult result;
  pfs::IoLog io;
  MLOC_ASSIGN_OR_RETURN(auto bitmaps, load_index(&io, &result.times));

  const auto span = scheme_.bins_overlapping(vc.lo, vc.hi);
  if (!span.empty()) {
    Stopwatch sw;
    // OR together aligned bins; collect candidate (edge) bins for checks.
    WahBitmap matched;
    bool have = false;
    std::vector<int> candidates;
    for (int b = span.first; b <= span.last; ++b) {
      if (scheme_.aligned(b, vc.lo, vc.hi)) {
        matched = have ? WahBitmap::logical_or(matched, bitmaps[b])
                       : bitmaps[b];
        have = true;
      } else {
        candidates.push_back(b);
      }
    }
    Bitmap plain = have ? matched.decompress() : Bitmap(shape_.volume());
    result.times.reconstruct += sw.seconds();
    result.bins_touched = static_cast<std::uint64_t>(span.last - span.first + 1);
    result.aligned_bins =
        result.bins_touched - static_cast<std::uint64_t>(candidates.size());

    // Candidate check: fetch raw values page-wise (FastBit reads the raw
    // column in large sequential pages, not per point).
    for (int b : candidates) {
      Bitmap cand = bitmaps[b].decompress();
      std::vector<std::uint64_t> cand_pos;
      cand.for_each_set([&](std::uint64_t pos) { cand_pos.push_back(pos); });
      MLOC_ASSIGN_OR_RETURN(auto vals, read_values_paged(cand_pos, &io));
      Stopwatch sw_check;
      for (std::size_t i = 0; i < cand_pos.size(); ++i) {
        if (vc.matches(vals[i])) plain.set(cand_pos[i]);
      }
      result.times.reconstruct += sw_check.seconds();
    }

    Stopwatch sw2;
    plain.for_each_set([&](std::uint64_t pos) {
      result.positions.push_back(pos);
    });
    result.times.reconstruct += sw2.seconds();
    if (values_needed) {
      MLOC_ASSIGN_OR_RETURN(result.values,
                            read_values_paged(result.positions, &io));
    }
  }

  result.bytes_read = io.total_bytes();
  // Index load + bitmap work is inherently serial in FastBit's query path;
  // rank parallelism is granted for the raw-value fetches by splitting the
  // log's records round-robin (approximation documented in DESIGN.md).
  result.times.io = pfs::model_makespan(fs_->config(), io, 1);
  return result;
}

Result<QueryResult> FastBitStore::value_query(const Region& sc,
                                              int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("num_ranks must be >= 1");
  if (sc.ndims() != shape_.ndims()) {
    return invalid_argument("fastbit: SC dimensionality mismatch");
  }
  QueryResult result;
  pfs::IoLog io;
  // FastBit still pays the full index load before query processing.
  MLOC_ASSIGN_OR_RETURN(auto bitmaps, load_index(&io, &result.times));
  (void)bitmaps;

  if (!sc.empty()) {
    // Fetch the SC's rows from the raw file.
    const int last = shape_.ndims() - 1;
    Coord hi = sc.hi();
    hi[last] = sc.lo(last) + 1;
    const Region outer(sc.ndims(), sc.lo(), hi);
    const std::uint32_t run = sc.extent(last);
    Status status = Status::ok();
    Stopwatch sw;
    double filter_s = 0;
    outer.for_each([&](const Coord& c) {
      if (!status.is_ok()) return;
      const std::uint64_t start = shape_.linearize(c);
      auto raw = fs_->read(raw_file_, start * sizeof(double),
                           static_cast<std::uint64_t>(run) * sizeof(double),
                           &io, 0);
      if (!raw.is_ok()) {
        status = raw.status();
        return;
      }
      Stopwatch sw_inner;
      auto vals = bytes_to_doubles(raw.value());
      if (!vals.is_ok()) {
        status = vals.status();
        return;
      }
      for (std::uint32_t i = 0; i < run; ++i) {
        result.positions.push_back(start + i);
        result.values.push_back(vals.value()[i]);
      }
      filter_s += sw_inner.seconds();
    });
    MLOC_RETURN_IF_ERROR(status);
    (void)sw;
    result.times.reconstruct += filter_s;
  }

  result.bytes_read = io.total_bytes();
  result.times.io = pfs::model_makespan(fs_->config(), io, 1);
  return result;
}

}  // namespace mloc::baselines
