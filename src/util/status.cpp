#include "util/status.hpp"

namespace mloc {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kCorruptData: return "CorruptData";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kResourceExhausted: return "ResourceExhausted";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kCancelled: return "Cancelled";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "Ok";
  std::string out{error_code_name(code_)};
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mloc
