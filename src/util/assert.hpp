// Contract checking. MLOC_CHECK fires in all build types: layout code that
// silently writes a wrong byte order produces corrupt stores, so internal
// invariants are always enforced. MLOC_DCHECK compiles out in NDEBUG builds
// and is used on hot per-element paths only.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mloc::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "MLOC_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg && *msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace mloc::detail

#define MLOC_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::mloc::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define MLOC_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond))                                                      \
      ::mloc::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define MLOC_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define MLOC_DCHECK(cond) MLOC_CHECK(cond)
#endif
