// FNV-1a 64-bit hashing — the integrity checksum on every MLOC subfile
// segment. Not cryptographic; catches the storage-corruption and
// truncation faults the failure-injection tests exercise.
#pragma once

#include <cstdint>
#include <span>

namespace mloc {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                                std::uint64_t seed = kFnvOffsetBasis) noexcept {
  std::uint64_t h = seed;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace mloc
