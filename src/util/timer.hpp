// Timing infrastructure.
//
// MLOC experiments combine two notions of time:
//   * measured CPU time (decompression, filtering, assembly) from a
//     monotonic wall clock, and
//   * modeled I/O time produced by the PFS emulator's virtual clock
//     (seek + transfer + contention), since this reproduction has no
//     physical Lustre deployment.
// ComponentTimes carries the per-phase breakdown the paper reports in
// Fig. 6 (I/O, decompression, reconstruction).
#pragma once

#include <chrono>
#include <string>

namespace mloc {

/// Monotonic stopwatch for CPU phases.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction/restart.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-phase time breakdown of one data access (paper Fig. 6). Units: sec.
struct ComponentTimes {
  double io = 0.0;           ///< modeled seek+read+contention on the PFS
  double decompress = 0.0;   ///< measured codec decode time
  double reconstruct = 0.0;  ///< measured filtering + value assembly time

  [[nodiscard]] double total() const noexcept {
    return io + decompress + reconstruct;
  }

  ComponentTimes& operator+=(const ComponentTimes& other) noexcept {
    io += other.io;
    decompress += other.decompress;
    reconstruct += other.reconstruct;
    return *this;
  }

  /// Per-component max — models phases that overlap across parallel ranks
  /// only at barriers (each phase's makespan is its slowest rank).
  void max_with(const ComponentTimes& other) noexcept {
    if (other.io > io) io = other.io;
    if (other.decompress > decompress) decompress = other.decompress;
    if (other.reconstruct > reconstruct) reconstruct = other.reconstruct;
  }

  ComponentTimes& operator/=(double divisor) noexcept {
    io /= divisor;
    decompress /= divisor;
    reconstruct /= divisor;
    return *this;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace mloc
