// Deterministic random number generation.
//
// Every stochastic component in MLOC (synthetic data generation, query
// workload sampling, K-means restarts) takes an explicit Rng so experiments
// are reproducible bit-for-bit across runs and rank counts. The generator is
// xoshiro256**, seeded through splitmix64 so that small consecutive seeds
// yield decorrelated streams.
#pragma once

#include <cstdint>

namespace mloc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initialize the stream; identical seeds reproduce identical streams.
  void reseed(std::uint64_t seed) noexcept;

  /// Next 64 uniform random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal variate (Marsaglia polar method; caches the pair).
  double next_gaussian() noexcept;

  /// Split off an independent child stream (for per-rank/per-chunk use).
  [[nodiscard]] Rng split() noexcept { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  // UniformRandomBitGenerator interface, so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::uint64_t state_[4]{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mloc
