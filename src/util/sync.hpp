// Annotated synchronization layer — compile-time concurrency contracts.
//
// Every concurrent subsystem (QueryService sessions, the sharded
// FragmentCache, the exec/ingest pipelines' ThreadPool, the staging
// pipeline, the epoll wire server, MlocStore's published-state gates)
// expresses its locking discipline through these wrappers so Clang's
// capability analysis (-Wthread-safety -Wthread-safety-beta) can prove at
// compile time that:
//   * every access to a MLOC_GUARDED_BY member happens under its lock;
//   * every MLOC_REQUIRES function is only called with the lock held;
//   * no path leaks a lock (missing unlock) or double-acquires it;
//   * declared MLOC_ACQUIRED_BEFORE orderings are never inverted.
//
// The macros expand to Clang's thread-safety attributes under Clang and to
// nothing elsewhere, so GCC builds are unaffected; CI compiles the whole
// tree under clang++ -Wthread-safety -Wthread-safety-beta -Werror, and the
// compile-fail fixtures in tests/lint_fixtures/ prove the gate rejects each
// violation family. Escape hatch: MLOC_NO_THREAD_SAFETY_ANALYSIS — at most
// two justified uses exist repo-wide (see DESIGN.md §13).
//
// Condition variables deliberately expose only plain wait()/wait_until():
// predicates live as explicit `while (!cond) cv.wait(lock);` loops at the
// call site, where the analysis can see the guarded reads happen under the
// held capability (a predicate lambda handed to std::condition_variable
// would be analyzed as an unlocked free function).
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define MLOC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MLOC_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// Types.
#define MLOC_CAPABILITY(x) MLOC_THREAD_ANNOTATION_(capability(x))
#define MLOC_SCOPED_CAPABILITY MLOC_THREAD_ANNOTATION_(scoped_lockable)

// Data members.
#define MLOC_GUARDED_BY(x) MLOC_THREAD_ANNOTATION_(guarded_by(x))
#define MLOC_PT_GUARDED_BY(x) MLOC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define MLOC_ACQUIRED_BEFORE(...) \
  MLOC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MLOC_ACQUIRED_AFTER(...) \
  MLOC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Functions.
#define MLOC_REQUIRES(...) \
  MLOC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MLOC_REQUIRES_SHARED(...) \
  MLOC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define MLOC_ACQUIRE(...) \
  MLOC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MLOC_ACQUIRE_SHARED(...) \
  MLOC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define MLOC_RELEASE(...) \
  MLOC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MLOC_RELEASE_SHARED(...) \
  MLOC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define MLOC_RELEASE_GENERIC(...) \
  MLOC_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define MLOC_TRY_ACQUIRE(...) \
  MLOC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define MLOC_EXCLUDES(...) MLOC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define MLOC_ASSERT_CAPABILITY(x) MLOC_THREAD_ANNOTATION_(assert_capability(x))
#define MLOC_RETURN_CAPABILITY(x) MLOC_THREAD_ANNOTATION_(lock_returned(x))
#define MLOC_NO_THREAD_SAFETY_ANALYSIS \
  MLOC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace mloc::sync {

class MutexLock;
class CondVar;

/// Exclusive mutex capability (wraps std::mutex). Non-movable — owners that
/// must stay movable hold a MutexHandle instead.
class MLOC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MLOC_ACQUIRE() { mu_.lock(); }
  void unlock() MLOC_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() MLOC_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Reader/writer mutex capability (wraps std::shared_mutex). Non-movable.
class MLOC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MLOC_ACQUIRE() { mu_.lock(); }
  void unlock() MLOC_RELEASE() { mu_.unlock(); }
  void lock_shared() MLOC_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MLOC_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_mutex mu_;
};

/// Exclusive mutex capability whose storage sits behind a shared_ptr: the
/// owning object stays movable, and copies made at setup share one
/// underlying mutex. This is the shape MlocStore's gates always had
/// (shared_ptr<std::mutex>), now carrying the capability annotations.
class MLOC_CAPABILITY("mutex") MutexHandle {
 public:
  MutexHandle() : mu_(std::make_shared<std::mutex>()) {}

  void lock() MLOC_ACQUIRE() { mu_->lock(); }
  void unlock() MLOC_RELEASE() { mu_->unlock(); }

 private:
  friend class MutexLock;
  std::shared_ptr<std::mutex> mu_;
};

/// Reader/writer capability behind a shared_ptr (movable owner, copies
/// share the mutex) — MlocStore's published-state gate.
class MLOC_CAPABILITY("shared_mutex") SharedMutexHandle {
 public:
  SharedMutexHandle() : mu_(std::make_shared<std::shared_mutex>()) {}

  void lock() MLOC_ACQUIRE() { mu_->lock(); }
  void unlock() MLOC_RELEASE() { mu_->unlock(); }
  void lock_shared() MLOC_ACQUIRE_SHARED() { mu_->lock_shared(); }
  void unlock_shared() MLOC_RELEASE_SHARED() { mu_->unlock_shared(); }

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_ptr<std::shared_mutex> mu_;
};

/// Scoped exclusive lock over a Mutex or MutexHandle. Holds a
/// std::unique_lock internally so CondVar can wait on it.
class MLOC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MLOC_ACQUIRE(mu) : lk_(mu.mu_) {}
  explicit MutexLock(MutexHandle& mu) MLOC_ACQUIRE(mu) : lk_(*mu.mu_) {}
  ~MutexLock() MLOC_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Scoped exclusive (writer) lock over a SharedMutex / SharedMutexHandle.
class MLOC_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MLOC_ACQUIRE(mu) : lk_(mu.mu_) {}
  explicit WriterLock(SharedMutexHandle& mu) MLOC_ACQUIRE(mu) : lk_(*mu.mu_) {}
  ~WriterLock() MLOC_RELEASE() = default;

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lk_;
};

/// Scoped shared (reader) lock over a SharedMutex / SharedMutexHandle.
class MLOC_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(const SharedMutex& mu) MLOC_ACQUIRE_SHARED(mu)
      : lk_(const_cast<SharedMutex&>(mu).mu_) {}
  explicit ReaderLock(const SharedMutexHandle& mu) MLOC_ACQUIRE_SHARED(mu)
      : lk_(*mu.mu_) {}
  ~ReaderLock() MLOC_RELEASE_GENERIC() = default;

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lk_;
};

/// Condition variable paired with sync::Mutex via MutexLock. No predicate
/// overloads by design (see file header): write the wait loop explicitly so
/// the analysis checks the guarded reads in the condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `lock`, block, and reacquire before returning.
  /// Capability-wise the lock is held on entry and exit; the analysis does
  /// not model the window in between (same as every annotated condvar).
  void wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  std::cv_status wait_until(MutexLock& lock,
                            std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lk_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace mloc::sync
