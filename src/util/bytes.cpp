#include "util/bytes.hpp"

namespace mloc {

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

Result<std::uint8_t> ByteReader::get_u8() {
  if (remaining() < 1) return corrupt_data("byte stream truncated");
  return data_[pos_++];
}

Result<std::int64_t> ByteReader::get_i64() {
  MLOC_ASSIGN_OR_RETURN(std::uint64_t bits, get_u64());
  return static_cast<std::int64_t>(bits);
}

Result<double> ByteReader::get_f64() {
  MLOC_ASSIGN_OR_RETURN(std::uint64_t bits, get_u64());
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Result<std::uint64_t> ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) return corrupt_data("varint truncated");
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0)) {
      return corrupt_data("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<std::string> ByteReader::get_string() {
  MLOC_ASSIGN_OR_RETURN(std::uint64_t n, get_varint());
  if (remaining() < n) return corrupt_data("string truncated");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Result<std::span<const std::uint8_t>> ByteReader::get_bytes(std::size_t n) {
  if (remaining() < n) return corrupt_data("raw bytes truncated");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Bytes doubles_to_bytes(std::span<const double> values) {
  Bytes out(values.size() * sizeof(double));
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), out.size());
  }
  return out;
}

Result<std::vector<double>> bytes_to_doubles(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() % sizeof(double) != 0) {
    return corrupt_data("byte count not a multiple of sizeof(double)");
  }
  std::vector<double> out(bytes.size() / sizeof(double));
  if (!out.empty()) {
    std::memcpy(out.data(), bytes.data(), bytes.size());
  }
  return out;
}

}  // namespace mloc
