#include "util/timer.hpp"

#include <cstdio>

namespace mloc {

std::string ComponentTimes::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "io=%.4fs decompress=%.4fs reconstruct=%.4fs total=%.4fs", io,
                decompress, reconstruct, total());
  return buf;
}

}  // namespace mloc
