#include "util/rng.hpp"

#include <cmath>

namespace mloc {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = next_double(-1.0, 1.0);
    v = next_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * scale;
  has_cached_gaussian_ = true;
  return u * scale;
}

}  // namespace mloc
