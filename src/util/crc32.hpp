// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the subfile
// footer checksum. FNV-1a (hash.hpp) guards individual segments; the CRC
// footer covers a subfile's entire payload so truncation, extension, and
// damage to the fragment-table bytes themselves are also caught (those
// bytes are not covered by any per-segment checksum).
#pragma once

#include <cstdint>
#include <span>

namespace mloc {

/// CRC-32 of `bytes`, optionally continuing from a previous value (pass the
/// prior return value to checksum a file in pieces).
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t crc = 0) noexcept;

}  // namespace mloc
