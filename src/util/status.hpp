// Status and Result<T>: lightweight error propagation used across MLOC.
//
// MLOC is a storage/query library; most failures (corrupt stream, missing
// subfile, malformed plan) are recoverable conditions the caller must see,
// not programming errors. We therefore return Status / Result<T> from
// fallible operations and reserve exceptions/asserts for contract
// violations (see MLOC_CHECK in assert.hpp).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mloc {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed a malformed request/plan
  kOutOfRange,        // index/region outside the dataset bounds
  kNotFound,          // named variable/file/bin does not exist
  kCorruptData,       // stream failed integrity checks during decode
  kUnsupported,       // feature combination not implemented by this codec
  kFailedPrecondition,// object not in the required state (e.g. store closed)
  kIoError,           // backing store read/write failed
  kInternal,          // invariant broke; indicates a bug in MLOC itself
  kResourceExhausted, // admission/backpressure limit hit; retry later
  kDeadlineExceeded,  // query deadline passed before completion
  kCancelled,         // caller withdrew the request before it ran
};

/// Human-readable name of an error code ("InvalidArgument", ...).
std::string_view error_code_name(ErrorCode code) noexcept;

/// A success-or-error value. Cheap to copy on success (empty message).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "Ok" or "<CodeName>: <message>" — for logs and test failures.
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status corrupt_data(std::string msg) {
  return {ErrorCode::kCorruptData, std::move(msg)};
}
inline Status unsupported(std::string msg) {
  return {ErrorCode::kUnsupported, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status io_error(std::string msg) {
  return {ErrorCode::kIoError, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status deadline_exceeded(std::string msg) {
  return {ErrorCode::kDeadlineExceeded, std::move(msg)};
}
inline Status cancelled(std::string msg) {
  return {ErrorCode::kCancelled, std::move(msg)};
}

/// Value-or-Status. Like std::expected<T, Status> (not available pre-C++23).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(payload_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Status of the error alternative; Status::ok() when holding a value.
  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }

  /// Access the value. Precondition: is_ok().
  [[nodiscard]] T& value() & { return std::get<T>(payload_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(payload_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(payload_)); }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

// Propagate an error Status from an expression producing a Status.
#define MLOC_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::mloc::Status mloc_status_ = (expr);            \
    if (!mloc_status_.is_ok()) return mloc_status_;  \
  } while (false)

// Evaluate a Result<T> expression; on error return its Status, otherwise
// bind the value to `lhs` (declaration or assignment target).
#define MLOC_ASSIGN_OR_RETURN(lhs, expr)                    \
  MLOC_ASSIGN_OR_RETURN_IMPL_(                              \
      MLOC_STATUS_CONCAT_(mloc_result_, __LINE__), lhs, expr)

#define MLOC_STATUS_CONCAT_INNER_(a, b) a##b
#define MLOC_STATUS_CONCAT_(a, b) MLOC_STATUS_CONCAT_INNER_(a, b)
#define MLOC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.is_ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

}  // namespace mloc
