// Byte-buffer serialization primitives.
//
// All MLOC on-"disk" structures (bin indices, codec streams, subfile
// headers) are encoded little-endian through ByteWriter/ByteReader so the
// format is explicit and platform-independent. ByteReader is bounds-checked:
// reading past the end yields CorruptData instead of UB, which the
// failure-injection tests rely on.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace mloc {

using Bytes = std::vector<std::uint8_t>;

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// LEB128-style variable-length unsigned integer (1 byte for values <128).
  void put_varint(std::uint64_t v);

  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void put_string(std::string_view s) {
    put_varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Bounds-checked little-endian decoder over a borrowed span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  Result<std::uint8_t> get_u8();
  Result<std::uint16_t> get_u16() { return get_le<std::uint16_t>(); }
  Result<std::uint32_t> get_u32() { return get_le<std::uint32_t>(); }
  Result<std::uint64_t> get_u64() { return get_le<std::uint64_t>(); }
  Result<std::int64_t> get_i64();
  Result<double> get_f64();
  Result<std::uint64_t> get_varint();
  Result<std::string> get_string();

  /// Borrow `n` raw bytes from the current position.
  Result<std::span<const std::uint8_t>> get_bytes(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> get_le() {
    if (remaining() < sizeof(T)) {
      return corrupt_data("byte stream truncated");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Reinterpret a vector of doubles as its raw byte image (copy).
Bytes doubles_to_bytes(std::span<const double> values);

/// Inverse of doubles_to_bytes. Fails when size is not a multiple of 8.
Result<std::vector<double>> bytes_to_doubles(std::span<const std::uint8_t> bytes);

}  // namespace mloc
